"""The *criticized* non-linear DLT allocator ([31]–[35]), done right.

Hung & Robertazzi and Suresh et al. pose the problem: distribute ``N``
data units of an :math:`N^\\alpha`-cost load over heterogeneous workers
so that all finish simultaneously, minimising the makespan of this
single round.  §2's point is **not** that this problem is unsolvable —
we solve it exactly below — but that its solution is *futile*: the round
covers a vanishing :math:`\\sim 1/P^{\\alpha-1}` fraction of the total
work.  Having the genuine optimum lets the §2 experiments measure that
fraction rather than assume it.

Parallel links
--------------
Worker *i* finishes at :math:`f_i(n) = c_i n + w_i n^\\alpha`, strictly
increasing in ``n``.  For a target makespan ``T``, each worker's chunk
is the unique root :math:`n_i(T) = f_i^{-1}(T)`; the total
:math:`\\sum_i n_i(T)` is continuous and strictly increasing in ``T``,
so the optimal ``T`` solving :math:`\\sum_i n_i(T) = N` is found by
bisection (all workers finish exactly together — the standard
equal-finish-time optimality argument applies because ``f_i`` are
increasing and any imbalance can be traded profitably).

One-port
--------
With sequential communications the construction is nested: for a target
``T``, chunk :math:`n_1` solves :math:`c_1 n + w_1 n^\\alpha = T`; the
next worker's transfer starts at :math:`c_1 n_1`, and so on.  The total
distributed is again monotone non-increasing in the start offsets and
increasing in ``T`` (each :math:`n_j(T)` is non-decreasing in ``T``
because a larger budget both shifts the start earlier relative to the
deadline and allows more compute), so the same outer bisection applies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.nonlinear import partial_work_fraction
from repro.platform.star import StarPlatform
from repro.registry import register
from repro.util.validation import check_positive

_BISECT_ITERS = 200
_REL_TOL = 1e-13


@dataclass(frozen=True)
class NonlinearAllocation:
    """Equal-finish-time allocation of an :math:`N^\\alpha` load."""

    amounts: np.ndarray
    finish: np.ndarray
    makespan: float
    alpha: float
    model: str
    #: work performed this round: Σ n_i^α
    partial_work: float
    #: total sequential work N^α
    total_work: float

    @property
    def covered_fraction(self) -> float:
        """Share of the whole job's work done by this round (§2)."""
        return self.partial_work / self.total_work

    @property
    def residual_fraction(self) -> float:
        """Share of work remaining after the round — tends to 1."""
        return 1.0 - self.covered_fraction

    @property
    def total(self) -> float:
        """Total data distributed."""
        return float(self.amounts.sum())


def _invert_finish(c: float, w: float, alpha: float, T: float) -> float:
    """Solve ``c*n + w*n**alpha = T`` for ``n >= 0`` (monotone bisection)."""
    if T <= 0:
        return 0.0
    # Upper bound: n <= T/c and n <= (T/w)**(1/alpha).
    hi = min(T / c, (T / w) ** (1.0 / alpha))
    lo = 0.0
    f = lambda n: c * n + w * n**alpha  # noqa: E731 - local helper
    if f(hi) < T:  # numerical safety; cannot happen mathematically
        return hi
    for _ in range(_BISECT_ITERS):
        mid = 0.5 * (lo + hi)
        if f(mid) < T:
            lo = mid
        else:
            hi = mid
        if hi - lo <= _REL_TOL * max(1.0, hi):
            break
    return 0.5 * (lo + hi)


def _amounts_parallel(
    c: np.ndarray, w: np.ndarray, alpha: float, T: float
) -> np.ndarray:
    return np.array(
        [_invert_finish(ci, wi, alpha, T) for ci, wi in zip(c, w)]
    )


@register(
    "dlt_solver",
    "nonlinear-parallel",
    summary="Equal-finish-time allocation of an N^alpha load, parallel links (§2)",
)
def solve_nonlinear_parallel(
    platform: StarPlatform, N: float, alpha: float = 2.0
) -> NonlinearAllocation:
    """Optimal single-round allocation of an :math:`N^\\alpha` load.

    Parallel-links star, heterogeneous workers.  All workers finish at
    the same instant (asserted in tests); for homogeneous platforms this
    degenerates to the §2 closed form ``n_i = N/P``.
    """
    check_positive(N, "N")
    check_positive(alpha, "alpha")
    c = platform.comm_times
    w = platform.cycle_times

    # Bracket the makespan: the slowest single worker doing all of N is
    # an upper bound; zero is a lower bound.
    T_hi = float(np.min(c * N + w * N**alpha))  # fastest-alone time bounds below
    # Ensure T_hi really over-distributes:
    while _amounts_parallel(c, w, alpha, T_hi).sum() < N:
        T_hi *= 2.0
    T_lo = 0.0
    for _ in range(_BISECT_ITERS):
        T_mid = 0.5 * (T_lo + T_hi)
        if _amounts_parallel(c, w, alpha, T_mid).sum() < N:
            T_lo = T_mid
        else:
            T_hi = T_mid
        if T_hi - T_lo <= _REL_TOL * max(1.0, T_hi):
            break
    T = 0.5 * (T_lo + T_hi)
    amounts = _amounts_parallel(c, w, alpha, T)
    # Normalise the residual rounding error onto the amounts so they sum
    # exactly to N (keeps conservation exact for downstream accounting).
    amounts *= N / amounts.sum()
    finish = c * amounts + w * amounts**alpha
    partial = float(np.sum(amounts**alpha))
    return NonlinearAllocation(
        amounts=amounts,
        finish=finish,
        makespan=float(finish.max()),
        alpha=float(alpha),
        model="nonlinear/parallel-links",
        partial_work=partial,
        total_work=float(N**alpha),
    )


def _amounts_one_port(
    c: np.ndarray, w: np.ndarray, alpha: float, T: float, order: np.ndarray
) -> np.ndarray:
    amounts = np.zeros(c.size, dtype=float)
    start = 0.0
    for idx in order:
        budget = T - start
        if budget <= 0:
            break
        n = _invert_finish(c[idx], w[idx], alpha, budget)
        amounts[idx] = n
        start += c[idx] * n
    return amounts


@register(
    "dlt_solver",
    "nonlinear-one-port",
    summary="Equal-finish-time allocation of an N^alpha load, one-port (§2)",
)
def solve_nonlinear_one_port(
    platform: StarPlatform,
    N: float,
    alpha: float = 2.0,
    order: Sequence[int] | None = None,
) -> NonlinearAllocation:
    """Equal-finish-time allocation under one-port communications.

    This is the formulation actually studied by [33]–[35] ("single level
    tree network"); order defaults to non-decreasing :math:`c_i`.
    """
    check_positive(N, "N")
    check_positive(alpha, "alpha")
    c = platform.comm_times
    w = platform.cycle_times
    p = platform.size
    if order is None:
        order = np.argsort(c, kind="stable")
    order = np.asarray(order, dtype=int)
    if sorted(order.tolist()) != list(range(p)):
        raise ValueError(f"order must be a permutation of 0..{p - 1}")

    T_hi = float(np.min(c * N + w * N**alpha))
    while _amounts_one_port(c, w, alpha, T_hi, order).sum() < N:
        T_hi *= 2.0
    T_lo = 0.0
    for _ in range(_BISECT_ITERS):
        T_mid = 0.5 * (T_lo + T_hi)
        if _amounts_one_port(c, w, alpha, T_mid, order).sum() < N:
            T_lo = T_mid
        else:
            T_hi = T_mid
        if T_hi - T_lo <= _REL_TOL * max(1.0, T_hi):
            break
    T = 0.5 * (T_lo + T_hi)
    amounts = _amounts_one_port(c, w, alpha, T, order)
    amounts *= N / amounts.sum()

    finish = np.zeros(p, dtype=float)
    start = 0.0
    for idx in order:
        start += c[idx] * amounts[idx]
        finish[idx] = start + w[idx] * amounts[idx] ** alpha
    partial = float(np.sum(amounts**alpha))
    return NonlinearAllocation(
        amounts=amounts,
        finish=finish,
        makespan=float(finish.max()),
        alpha=float(alpha),
        model="nonlinear/one-port",
        partial_work=partial,
        total_work=float(N**alpha),
    )


def homogeneous_covered_fraction(P: int, alpha: float) -> float:
    """Closed form cross-check: on homogeneous stars the solver's
    :attr:`NonlinearAllocation.covered_fraction` equals
    :math:`P^{1-\\alpha}` exactly (§2)."""
    return partial_work_fraction(P, alpha)
