"""The plan service's wire format: a versioned pickle envelope.

Every binary payload the service moves — a
:class:`~repro.core.pipeline.PlanRequest`, a
:class:`~repro.core.vectorize.VectorGroup`, a list of
:class:`~repro.core.pipeline.PlanResult`\\ s, a plan-cache key — travels
as one *envelope*::

    repro-plan-wire:v1\\n          <- magic line, checked BEFORE unpickling
    pickle({"format":  "repro-plan-service",
            "version": 1,
            "payload": <the object>})

The magic line makes accidental cross-talk (posting a cache export, an
HTML error page, or a newer wire version at an endpoint) fail with a
clean :class:`WireError` *without* executing anything from the body —
the same header-before-pickle discipline ``repro cache import`` uses.
The version field is how the format evolves: bump
:data:`WIRE_VERSION` when the payload contract changes, and old
clients/servers reject the mismatch loudly instead of mis-decoding.

Trust model: an envelope body is still a pickle, and unpickling runs
code.  The plan service is built for *trusted* networks — one team's
hosts sharing a warm planning tier — not for the open internet; do not
point a server at untrusted clients or a client at untrusted servers.
(The same caveat has applied to ``repro cache import`` since PR 4.)
"""

from __future__ import annotations

import pickle
from typing import Any

#: dotted format name embedded in every envelope
WIRE_FORMAT = "repro-plan-service"
#: bump on any payload-contract change; both ends must match
WIRE_VERSION = 1
#: magic first line; checked before any unpickling happens
WIRE_MAGIC = b"repro-plan-wire:v1\n"
#: content type the HTTP endpoints speak for binary envelopes
CONTENT_TYPE = "application/x-repro-plan"
#: HTTP header advertising the sender's wire version
VERSION_HEADER = "X-Repro-Wire-Version"


class WireError(ValueError):
    """The bytes on the wire are not a valid envelope (or wrong version)."""


def pack(payload: Any) -> bytes:
    """Wrap ``payload`` in a magic-prefixed, versioned envelope."""
    return WIRE_MAGIC + pickle.dumps(
        {"format": WIRE_FORMAT, "version": WIRE_VERSION, "payload": payload},
        protocol=pickle.HIGHEST_PROTOCOL,
    )


def unpack(data: bytes) -> Any:
    """Validate an envelope and return its payload.

    The magic prefix is checked before any unpickling, so arbitrary
    bytes posted at a service endpoint (or a service response read by
    something that is not a service client) are rejected without
    executing anything from them.
    """
    if not data.startswith(WIRE_MAGIC):
        raise WireError(
            "not a repro plan-service envelope (missing "
            f"{WIRE_MAGIC!r} header)"
        )
    try:
        envelope = pickle.loads(data[len(WIRE_MAGIC):])
    except Exception as exc:  # pickle raises a small zoo of types
        raise WireError(f"undecodable plan-service envelope ({exc})") from None
    if not isinstance(envelope, dict) or envelope.get("format") != WIRE_FORMAT:
        raise WireError("not a repro plan-service envelope (bad format field)")
    version = envelope.get("version")
    if version != WIRE_VERSION:
        raise WireError(
            f"wire version mismatch: peer speaks {version!r}, "
            f"this end speaks {WIRE_VERSION} — upgrade the older side"
        )
    if "payload" not in envelope:
        raise WireError("not a repro plan-service envelope (no payload)")
    return envelope["payload"]
