#!/usr/bin/env python3
"""CI smoke for the load-test harness: cluster up → loadtest → logs.

Boots ``repro cluster up -n 2 --log PATH --trace PATH`` on an
ephemeral port, then asserts the operability tentpole end to end,
from outside the process:

1. ``repro loadtest --trace-sample 5`` sustains traffic against the
   coordinator for 5 seconds and exits 0 — achieved RPS > 0, zero
   answered errors, zero transport failures, and the client-vs-server
   ``/metrics`` request-count cross-check matching exactly (the JSON
   report is the proof, not the exit code alone);
2. the coordinator's access log holds one parseable line per
   front-door request — every line round-trips through
   ``parse_access_line`` and the planning-endpoint line counts agree
   with the loadtest's own books;
3. every sampled trace assembles *completely* from the client,
   coordinator, and worker span files — one trace per sampled op,
   no orphans — and every sampled access line's trace id appears in
   the assembled set (the log and the trace files name the same
   requests);
4. ``repro cluster down`` cleans up.

Exits non-zero on any failure; prints a BENCH-style JSON line so CI
logs are grep-able.

Run: ``python scripts/loadtest_smoke.py``
"""

from __future__ import annotations

import json
import os
import re
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
BANNER_RE = re.compile(r"cluster coordinator listening on (http://\S+)")

LOADTEST_RPS = 40
LOADTEST_DURATION_S = 5
TRACE_SAMPLE = 5  # 1-in-5 ops carries a trace context


def client_env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = (
        str(REPO_ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    )
    return env


def main() -> int:
    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.obs import assemble_traces, read_spans
    from repro.service.metrics import parse_access_line

    with tempfile.TemporaryDirectory(prefix="repro-loadtest-smoke-") as tmp:
        state_path = Path(tmp) / "cluster.json"
        log_path = Path(tmp) / "access.log"
        trace_path = Path(tmp) / "spans.jsonl"
        client_trace_path = Path(tmp) / "client-spans.jsonl"
        up = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "cluster", "up",
                "-n", "2",
                "--port", "0",
                "--state", str(state_path),
                "--log", str(log_path),
                "--trace", str(trace_path),
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=client_env(),
        )
        try:
            url = None
            deadline = time.time() + 60
            while time.time() < deadline:
                line = up.stdout.readline()
                if not line:
                    raise SystemExit(
                        f"cluster up exited ({up.poll()}) before its banner"
                    )
                match = BANNER_RE.search(line)
                if match:
                    url = match.group(1)
                    break
            if url is None:
                raise SystemExit("no coordinator banner within 60s")

            # 1. the loadtest itself: 5s of traffic, strict verdict
            proc = subprocess.run(
                [
                    sys.executable, "-m", "repro", "loadtest", url,
                    "--rps", str(LOADTEST_RPS),
                    "--duration", str(LOADTEST_DURATION_S),
                    "--trace-sample", str(TRACE_SAMPLE),
                    "--trace-file", str(client_trace_path),
                    "--json",
                ],
                capture_output=True,
                text=True,
                env=client_env(),
                timeout=300,
            )
            if proc.returncode != 0:
                raise SystemExit(
                    f"repro loadtest failed ({proc.returncode}):\n"
                    f"{proc.stdout}\n{proc.stderr}"
                )
            report = json.loads(proc.stdout)
            assert report["verdict"] == "pass", report
            assert report["achieved_rps"] > 0, report
            assert report["errors"] == 0, report
            assert report["unavailable"] == 0, report
            assert report["server_check_ok"] is True, report
            assert report["server_check"], "cross-check must have run"
            for check in report["server_check"]:
                assert check["matched"], check

            # 2. every access line parses; the log agrees with the books
            lines = [
                line
                for line in log_path.read_text().splitlines()
                if line.strip()
            ]
            assert lines, f"no access lines in {log_path}"
            parsed = [parse_access_line(line) for line in lines]
            logged = {}
            for entry in parsed:
                logged[entry["endpoint"]] = logged.get(entry["endpoint"], 0) + 1
            for check in report["server_check"]:
                assert logged.get(check["endpoint"], 0) >= check["expected"], (
                    f"access log undercounts {check['endpoint']}: "
                    f"{logged} vs {check}"
                )

            # 3. every sampled trace assembles completely across the
            # client, coordinator, and worker span files
            time.sleep(0.5)  # server roots close after the response
            trace_report = report.get("trace")
            assert trace_report, "loadtest report carries no trace section"
            assert trace_report["sample"] == TRACE_SAMPLE, trace_report
            assert trace_report["sampled"] > 0, trace_report
            span_files = [str(client_trace_path), str(trace_path)] + [
                str(trace_path) + f".w{i}"
                for i in range(2)
                if (Path(str(trace_path) + f".w{i}")).exists()
            ]
            spans = read_spans(span_files)
            traces = assemble_traces(spans)
            sampled_ids = set(trace_report["trace_ids"])
            assembled_ids = {t.trace_id for t in traces}
            assert assembled_ids == sampled_ids, (
                f"trace files hold {len(assembled_ids)} trace ids, "
                f"loadtest sampled {len(sampled_ids)}"
            )
            incomplete = [t.trace_id for t in traces if not t.complete]
            assert not incomplete, (
                f"{len(incomplete)} of {len(traces)} sampled traces "
                f"did not assemble completely: {incomplete[:5]}"
            )
            # every sampled access line names a trace the files hold
            logged_ids = {
                entry["trace"] for entry in parsed if entry["trace"] != "-"
            }
            assert logged_ids, "no access line carried a trace id"
            assert logged_ids <= assembled_ids, (
                f"access log names trace ids missing from the span "
                f"files: {sorted(logged_ids - assembled_ids)[:5]}"
            )

            # 4. clean teardown
            down = subprocess.run(
                [
                    sys.executable, "-m", "repro", "cluster", "down",
                    "--state", str(state_path),
                ],
                capture_output=True,
                text=True,
                env=client_env(),
                timeout=60,
            )
            if down.returncode != 0:
                raise SystemExit(
                    f"cluster down failed ({down.returncode}):\n"
                    f"{down.stdout}\n{down.stderr}"
                )

            print(
                "BENCH "
                + json.dumps(
                    {
                        "name": "loadtest_smoke",
                        "achieved_rps": report["achieved_rps"],
                        "sent": report["sent"],
                        "p99_ms": report["p99_ms"],
                        "access_lines": len(lines),
                        "traces_sampled": trace_report["sampled"],
                        "traces_complete": len(traces) - len(incomplete),
                    }
                )
            )
            print("loadtest smoke OK")
            return 0
        finally:
            if up.poll() is None:
                up.terminate()
                try:
                    up.wait(timeout=10)
                except subprocess.TimeoutExpired:
                    up.kill()
                    up.wait()
            time.sleep(0.1)


if __name__ == "__main__":
    sys.exit(main())
