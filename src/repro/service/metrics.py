"""Operability primitives for the service layer: metrics + admission.

Two small, stdlib-only building blocks both the single-server
:class:`~repro.service.server.PlanServer` and the cluster-mode
:class:`~repro.cluster.coordinator.ClusterCoordinator` share:

* :class:`ServerMetrics` — per-endpoint request counters and latency
  histograms behind one lock, served as plain JSON from ``/metrics``
  so ``curl``/dashboards need no client library.  Payloads carry the
  *raw* counters (count, errors, total time, bucket counts, exact max)
  plus derived convenience fields (mean/p50/p99); :func:`merge_metrics`
  re-derives the percentiles after summing raw counters, which is how
  a coordinator aggregates its workers' histograms losslessly.
* :class:`AdmissionGate` — a queue-depth limiter for graceful
  degradation under bursts: at most ``limit`` planning requests are in
  flight at once, the rest are refused so the server can answer ``429``
  with a ``Retry-After`` hint instead of queueing unboundedly and
  timing everyone out.  ``limit=None`` admits everything (the
  default), ``limit=0`` refuses everything (drain mode).

Latency buckets are fixed and log-spaced (sub-millisecond to tens of
seconds) so histograms from different processes are always mergeable
bucket-by-bucket; the exact maximum is tracked alongside so percentile
estimates clamp to a real observation rather than a bucket edge.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, Iterable, List, Mapping

#: histogram bucket upper bounds in seconds; one overflow bucket follows
LATENCY_BUCKETS_S: tuple = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


class _EndpointCounters:
    """Raw counters for one endpoint (guarded by the owning metrics lock)."""

    __slots__ = ("count", "errors", "total_s", "max_s", "buckets")

    def __init__(self) -> None:
        self.count = 0
        self.errors = 0
        self.total_s = 0.0
        self.max_s = 0.0
        self.buckets = [0] * (len(LATENCY_BUCKETS_S) + 1)

    def observe(self, status: int, elapsed_s: float) -> None:
        self.count += 1
        if status >= 400:
            self.errors += 1
        self.total_s += elapsed_s
        if elapsed_s > self.max_s:
            self.max_s = elapsed_s
        for i, bound in enumerate(LATENCY_BUCKETS_S):
            if elapsed_s <= bound:
                self.buckets[i] += 1
                break
        else:
            self.buckets[-1] += 1


def _quantile_s(buckets: List[int], count: int, max_s: float, q: float) -> float:
    """Estimate the ``q`` quantile from bucket counts (upper-bound rule).

    Returns the upper bound of the first bucket whose cumulative count
    reaches ``q * count``; observations in the overflow bucket clamp to
    the tracked exact maximum, so the estimate is never an invented
    bound past anything actually seen.
    """
    if count <= 0:
        return 0.0
    target = q * count
    cumulative = 0
    for i, n in enumerate(buckets):
        cumulative += n
        if cumulative >= target:
            if i < len(LATENCY_BUCKETS_S):
                return min(LATENCY_BUCKETS_S[i], max_s)
            return max_s
    return max_s


def _derived(raw: Mapping[str, Any]) -> Dict[str, Any]:
    """One endpoint's JSON view: raw counters + derived latency fields."""
    count = int(raw["count"])
    total_s = float(raw["total_s"])
    max_s = float(raw["max_s"])
    buckets = [int(b) for b in raw["buckets"]]
    return {
        "count": count,
        "errors": int(raw["errors"]),
        "total_s": round(total_s, 6),
        "max_s": round(max_s, 6),
        "buckets": buckets,
        "mean_ms": round(1000.0 * total_s / count, 3) if count else 0.0,
        "p50_ms": round(1000.0 * _quantile_s(buckets, count, max_s, 0.50), 3),
        "p99_ms": round(1000.0 * _quantile_s(buckets, count, max_s, 0.99), 3),
    }


class ServerMetrics:
    """Thread-safe per-endpoint request counters and latency histograms.

    ``observe(endpoint, status, elapsed_s)`` is called once per handled
    request (every response path, including errors and 429 refusals);
    ``payload()`` renders the JSON the ``/metrics`` endpoint serves.
    Endpoint names should come from a fixed route table (the handlers
    normalise unknown paths to ``"other"``) so cardinality stays
    bounded whatever clients probe.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._endpoints: Dict[str, _EndpointCounters] = {}
        self._started = time.time()

    def observe(self, endpoint: str, status: int, elapsed_s: float) -> None:
        with self._lock:
            counters = self._endpoints.get(endpoint)
            if counters is None:
                counters = self._endpoints[endpoint] = _EndpointCounters()
            counters.observe(int(status), float(elapsed_s))

    def payload(self) -> Dict[str, Any]:
        """The ``/metrics`` JSON: per-endpoint raw + derived counters."""
        with self._lock:
            endpoints = {
                name: _derived(
                    {
                        "count": c.count,
                        "errors": c.errors,
                        "total_s": c.total_s,
                        "max_s": c.max_s,
                        "buckets": c.buckets,
                    }
                )
                for name, c in sorted(self._endpoints.items())
            }
            started = self._started
        return {
            "uptime_s": round(time.time() - started, 3),
            "latency_buckets_s": list(LATENCY_BUCKETS_S),
            "endpoints": endpoints,
        }


def merge_metrics(payloads: Iterable[Mapping[str, Any]]) -> Dict[str, Any]:
    """Sum several ``/metrics`` payloads into one aggregate view.

    Counters and histogram buckets add; the exact max is the max of
    maxima; mean/p50/p99 are re-derived from the merged raw counters —
    so a coordinator's cluster-wide histogram is exactly what one
    server observing all the traffic would have reported (percentile
    resolution bounded by the shared bucket grid).  Payloads from
    servers with different bucket grids are rejected loudly rather
    than summed wrongly.
    """
    merged: Dict[str, Dict[str, Any]] = {}
    uptime = 0.0
    for payload in payloads:
        grid = list(payload.get("latency_buckets_s", LATENCY_BUCKETS_S))
        if grid != list(LATENCY_BUCKETS_S):
            raise ValueError(
                "cannot merge /metrics payloads with a different "
                f"latency bucket grid: {grid!r}"
            )
        uptime = max(uptime, float(payload.get("uptime_s", 0.0)))
        for name, ep in payload.get("endpoints", {}).items():
            agg = merged.get(name)
            if agg is None:
                merged[name] = {
                    "count": int(ep["count"]),
                    "errors": int(ep["errors"]),
                    "total_s": float(ep["total_s"]),
                    "max_s": float(ep["max_s"]),
                    "buckets": [int(b) for b in ep["buckets"]],
                }
            else:
                agg["count"] += int(ep["count"])
                agg["errors"] += int(ep["errors"])
                agg["total_s"] += float(ep["total_s"])
                agg["max_s"] = max(agg["max_s"], float(ep["max_s"]))
                agg["buckets"] = [
                    a + int(b) for a, b in zip(agg["buckets"], ep["buckets"])
                ]
    return {
        "uptime_s": round(uptime, 3),
        "latency_buckets_s": list(LATENCY_BUCKETS_S),
        "endpoints": {
            name: _derived(raw) for name, raw in sorted(merged.items())
        },
    }


class AdmissionGate:
    """Bounded in-flight admission: try_acquire / release around work.

    The planning endpoints wrap their handling in::

        if not gate.try_acquire():
            reply 429, Retry-After: gate.retry_after
        try: ... finally: gate.release()

    so at most ``limit`` requests plan concurrently and the excess is
    refused *immediately* — the client-visible contract bursts degrade
    to (the :class:`~repro.service.client.ServiceClient` retry path
    honours the hint).  ``limit=None`` admits everything.
    """

    def __init__(self, limit: int | None, retry_after: float = 0.5) -> None:
        if limit is not None and limit < 0:
            raise ValueError(f"max_inflight must be >= 0, got {limit}")
        if retry_after <= 0:
            raise ValueError(f"retry_after must be > 0, got {retry_after}")
        self.limit = limit
        self.retry_after = float(retry_after)
        self._lock = threading.Lock()
        self._inflight = 0

    @property
    def inflight(self) -> int:
        with self._lock:
            return self._inflight

    def try_acquire(self) -> bool:
        """Admit one request, or refuse when the queue depth is reached."""
        with self._lock:
            if self.limit is not None and self._inflight >= self.limit:
                return False
            self._inflight += 1
            return True

    def release(self) -> None:
        with self._lock:
            if self._inflight > 0:
                self._inflight -= 1
