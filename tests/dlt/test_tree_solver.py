"""Tests for repro.dlt.tree_solver — DLT beyond the star."""

import numpy as np
import pytest

from repro.dlt.single_round import solve_linear_parallel
from repro.dlt.tree_solver import solve_tree
from repro.platform.star import StarPlatform
from repro.platform.tree import TreePlatform


class TestLinearOnTrees:
    def test_conservation(self):
        plat = TreePlatform.balanced(depth=2, fanout=2)
        alloc = solve_tree(plat, 100.0)
        assert alloc.total == pytest.approx(100.0)
        assert all(v >= -1e-12 for v in alloc.amounts.values())

    def test_depth1_matches_star_closed_form(self):
        """A star-shaped tree with a non-computing master reproduces the
        §1.2 closed form — the consistency check between models."""
        speeds = [1.0, 2.0, 4.0]
        bandwidths = [1.0, 2.0, 1.0]
        tree = TreePlatform.star(speeds, bandwidths)
        star = StarPlatform.from_speeds(speeds, bandwidths)
        tree_alloc = solve_tree(tree, 100.0)
        star_alloc = solve_linear_parallel(star, 100.0)
        assert tree_alloc.makespan == pytest.approx(
            star_alloc.makespan, rel=1e-6
        )
        for i, node in enumerate(tree.root.children):
            assert tree_alloc.amounts[node.name] == pytest.approx(
                star_alloc.amounts[i], rel=1e-5
            )

    def test_computing_master_reduces_makespan(self):
        speeds = [1.0, 1.0]
        lazy = solve_tree(TreePlatform.star(speeds, master_speed=1e-12), 50.0)
        busy = solve_tree(TreePlatform.star(speeds, master_speed=2.0), 50.0)
        assert busy.makespan < lazy.makespan

    def test_deeper_trees_pay_relay_latency(self):
        """Same 4 workers: a chain of relays cannot beat the star."""
        star = TreePlatform.star([1.0] * 4)
        chain_root = TreePlatform.balanced(depth=0, fanout=1).root  # single node
        # build a 4-node chain under a non-computing master
        from repro.platform.tree import TreeNode

        root = TreeNode(speed=1e-12, name="master")
        node = root
        for i in range(4):
            node = node.add_child(speed=1.0, name=f"c{i}")
        chain = TreePlatform(root)
        t_star = solve_tree(star, 40.0).makespan
        t_chain = solve_tree(chain, 40.0).makespan
        assert t_chain >= t_star - 1e-9

    def test_faster_links_help(self):
        slow = TreePlatform.star([1.0, 1.0], bandwidths=0.5)
        fast = TreePlatform.star([1.0, 1.0], bandwidths=5.0)
        assert solve_tree(fast, 50.0).makespan < solve_tree(slow, 50.0).makespan

    def test_receive_end_monotone_down_the_tree(self):
        plat = TreePlatform.balanced(depth=2, fanout=2)
        alloc = solve_tree(plat, 64.0)
        for node in plat.nodes():
            if node.parent is not None:
                assert (
                    alloc.receive_end[node.name]
                    >= alloc.receive_end[node.parent.name] - 1e-9
                )

    def test_validation(self):
        plat = TreePlatform.star([1.0])
        with pytest.raises(ValueError):
            solve_tree(plat, 0.0)
        with pytest.raises(ValueError):
            solve_tree(plat, 10.0, alpha=-1.0)


class TestNonlinearOnTrees:
    def test_conservation_alpha2(self):
        plat = TreePlatform.balanced(depth=2, fanout=2)
        alloc = solve_tree(plat, 50.0, alpha=2.0)
        assert alloc.total == pytest.approx(50.0)

    def test_no_free_lunch_extends_to_trees(self):
        """§2 on trees: widening the tree does not fix the exponent —
        the covered fraction still collapses as workers multiply.

        Links are made fast so the effect measured is divisibility, not
        bandwidth saturation (slow links starve leaves, which *also*
        caps coverage but for a different reason).
        """
        fractions = []
        for fanout in (2, 4, 8):
            plat = TreePlatform.balanced(depth=2, fanout=fanout, bandwidth=1e4)
            alloc = solve_tree(plat, 100.0, alpha=2.0)
            fractions.append(alloc.covered_work_fraction(100.0))
        assert fractions == sorted(fractions, reverse=True)
        # fanout 8 → 73 workers: coverage near 1/73
        assert fractions[-1] < 0.05
        assert fractions[-1] == pytest.approx(1.0 / 73.0, rel=0.2)

    def test_star_tree_nonlinear_matches_star_solver(self):
        from repro.dlt.nonlinear_solver import solve_nonlinear_parallel

        speeds = [1.0, 3.0]
        tree = TreePlatform.star(speeds)
        star = StarPlatform.from_speeds(speeds)
        t_tree = solve_tree(tree, 60.0, alpha=2.0)
        t_star = solve_nonlinear_parallel(star, 60.0, alpha=2.0)
        assert t_tree.makespan == pytest.approx(t_star.makespan, rel=1e-4)
