#!/usr/bin/env python3
"""Section 2 walkthrough: why non-linear loads are not divisible.

Reproduces the paper's §2 argument numerically:

* the optimal single-round allocation of an N^alpha load (the exact
  problem of Hung & Robertazzi [31,32] / Suresh et al. [33–35]) covers
  a fraction 1/P^(alpha-1) of the total work;
* the fraction is independent of how sophisticated the allocation is —
  heterogeneous, one-port, multi-round all share the exponent;
* contrast with a linear load, where one round does everything.

Run: ``python examples/nonlinear_no_free_lunch.py``
"""

import numpy as np

from repro import StarPlatform, solve_nonlinear_parallel
from repro.core.nonlinear import dlt_phase_report, rounds_to_finish
from repro.dlt.multi_round import multi_round_nonlinear_coverage
from repro.dlt.nonlinear_solver import solve_nonlinear_one_port
from repro.experiments import run_section2
from repro.util.tables import format_table


def main() -> None:
    # --- the headline table (experiment E1) ----------------------------
    print(run_section2().render())
    print()

    # --- one concrete round, narrated (the §2 derivation) --------------
    report = dlt_phase_report(N=10_000.0, P=100, alpha=2.0, c=1.0, w=1.0)
    print(report.summary())
    print(
        f"  repeated equal-split rounds to reach 99% coverage: "
        f"{rounds_to_finish(100, 2.0, 0.99)} — divisibility bought nothing."
    )
    print()

    # --- sophistication does not change the exponent -------------------
    rng = np.random.default_rng(0)
    rows = []
    for P in (10, 50, 200):
        hom = StarPlatform.homogeneous(P)
        het = StarPlatform.from_speeds(rng.uniform(1, 100, P))
        rows.append(
            [
                P,
                solve_nonlinear_parallel(hom, 1000.0, 2.0).covered_fraction,
                solve_nonlinear_parallel(het, 1000.0, 2.0).covered_fraction,
                solve_nonlinear_one_port(hom, 1000.0, 2.0).covered_fraction,
                multi_round_nonlinear_coverage(hom, 1000.0, 2.0, rounds=4),
            ]
        )
    print(
        format_table(
            [
                "P",
                "parallel homog.",
                "parallel heterog.",
                "one-port",
                "4 rounds",
            ],
            rows,
            title=(
                "Covered work fraction of a quadratic load under every "
                "model variant (all Θ(1/P) or worse):"
            ),
        )
    )


if __name__ == "__main__":
    main()
