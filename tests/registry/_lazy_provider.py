"""A provider module: registers a component when (lazily) imported."""

from tests.registry import _hooks

_hooks.IMPORT_COUNT += 1
_hooks.TARGET.add("strategy", "lazy-strategy", lambda: "loaded lazily")
