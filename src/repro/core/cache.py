"""Content-keyed plan cache for :class:`~repro.core.session.PlannerSession`.

The Figure-4 protocol answers the *same* planning query many times
(100 trials × several strategies × repeated renders), and a service
front-end answers many identical user queries.  Planning is pure —
a (platform, N, strategy, params) tuple always yields the same plan —
so results are memoised under a content key:

    platform fingerprint × N × strategy (+ factory origin) × params

where *params* are first filtered down to what the strategy actually
accepts (:func:`repro.core.pipeline.supported_kwargs`).  Two requests
that differ only in a parameter the strategy ignores therefore share
one entry — e.g. ``imbalance_target`` never fragments the ``het``
cache.  Entries are LRU-evicted beyond ``max_entries``; hit/miss
statistics are kept for sweep tables and the ``repro cache-stats``
readout.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Hashable, Mapping

import numpy as np

from repro.core.pipeline import PlanRequest, PlanResult, supported_kwargs
from repro.util.tables import format_table


def freeze_value(value: Any) -> Hashable:
    """A hashable, content-equal stand-in for a parameter value.

    Mappings and sequences are frozen recursively (mappings sorted by
    key); numpy arrays hash by shape + raw bytes; anything else
    unhashable falls back to its ``repr``.
    """
    if isinstance(value, (str, bytes, int, float, bool, type(None))):
        return value
    if isinstance(value, Mapping):
        return tuple(
            (k, freeze_value(v)) for k, v in sorted(value.items())
        )
    if isinstance(value, np.ndarray):
        return (value.shape, value.dtype.str, value.tobytes())
    if isinstance(value, (list, tuple, set, frozenset)):
        items = sorted(value, key=repr) if isinstance(value, (set, frozenset)) else value
        return tuple(freeze_value(v) for v in items)
    try:
        hash(value)
        return value
    except TypeError:
        return repr(value)


def frozen_effective_params(
    request: PlanRequest, factory: Callable[..., Any]
) -> Hashable:
    """Hashable form of the params ``factory`` would actually receive.

    Filters the request's params down to what the factory's signature
    accepts, then freezes them sorted-by-name.  This is the *shared*
    definition of parameter identity: the plan cache keys on it and the
    vectorised path groups on it, so requests that share a cache entry
    always share a vector group (and vice versa).
    """
    effective = supported_kwargs(factory, request.params)
    return tuple((k, freeze_value(v)) for k, v in sorted(effective.items()))


def plan_cache_key(
    request: PlanRequest, factory: Callable[..., Any]
) -> Hashable:
    """The content key one request caches under.

    ``factory`` is the resolved strategy factory; its origin joins the
    key so re-registering a strategy name with a different factory
    (plugin replacement) does not serve stale plans, and its signature
    decides which params participate
    (:func:`frozen_effective_params`).
    """
    origin = (
        f"{getattr(factory, '__module__', '?')}."
        f"{getattr(factory, '__qualname__', getattr(factory, '__name__', '?'))}"
    )
    return (
        request.platform.fingerprint(),
        float(request.N),
        request.strategy,
        origin,
        frozen_effective_params(request, factory),
    )


@dataclass(frozen=True)
class CacheStats:
    """Cumulative hit/miss counters plus current occupancy."""

    hits: int
    misses: int
    entries: int
    max_entries: int
    evictions: int

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when unused)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def render(self) -> str:
        return format_table(
            ["lookups", "hits", "misses", "hit rate", "entries", "evictions"],
            [
                [
                    self.lookups,
                    self.hits,
                    self.misses,
                    f"{100 * self.hit_rate:.1f}%",
                    f"{self.entries}/{self.max_entries}",
                    self.evictions,
                ]
            ],
            title="Plan cache statistics",
        )


class PlanCache:
    """An LRU map from plan content keys to :class:`PlanResult`.

    Not thread-safe by itself; sessions perform all cache traffic on
    the calling thread (backends only plan misses), so no lock is
    needed there.  Entries are path-agnostic: scalar and vectorised
    planning produce interchangeable results (the vectorisation
    equivalence contract), so a cache may be warmed by either and
    shared between sessions::

        shared = PlanCache(max_entries=10_000)
        a = PlannerSession(cache=shared)
        b = PlannerSession(cache=shared, backend="threaded")

    ``key_for`` exposes the content key (platform fingerprint × N ×
    strategy + factory origin × effective params) for external stores
    that want to mirror the session keying.
    """

    def __init__(self, max_entries: int = 4096) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = max_entries
        self._entries: OrderedDict[Hashable, PlanResult] = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def key_for(
        self, request: PlanRequest, factory: Callable[..., Any]
    ) -> Hashable:
        return plan_cache_key(request, factory)

    def get(self, key: Hashable) -> PlanResult | None:
        """The cached result for ``key``, counting the hit or miss."""
        entry = self._entries.get(key)
        if entry is None:
            self._misses += 1
            return None
        self._hits += 1
        self._entries.move_to_end(key)
        return entry

    def put(self, key: Hashable, result: PlanResult) -> None:
        self._entries[key] = result
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self._evictions += 1

    def clear(self) -> None:
        """Drop every entry and reset all statistics."""
        self._entries.clear()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    @property
    def stats(self) -> CacheStats:
        return CacheStats(
            hits=self._hits,
            misses=self._misses,
            entries=len(self._entries),
            max_entries=self.max_entries,
            evictions=self._evictions,
        )
