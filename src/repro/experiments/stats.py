"""Statistical helpers for experiment sweeps (scipy-backed).

The paper reports mean ± standard deviation over 100 trials; a careful
reproduction should also say how confident it is in the means.  These
helpers add Student-t confidence intervals and a two-sample comparison
used to assert that strategy orderings are statistically significant,
not seed luck.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats


@dataclass(frozen=True)
class Summary:
    """Mean, spread and a t confidence interval of one sample."""

    n: int
    mean: float
    std: float
    ci_low: float
    ci_high: float
    confidence: float

    @property
    def half_width(self) -> float:
        return 0.5 * (self.ci_high - self.ci_low)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.mean:.4g} ± {self.half_width:.2g} "
            f"({100 * self.confidence:.0f}% CI, n={self.n})"
        )


def summarize(sample, confidence: float = 0.95) -> Summary:
    """Mean ± Student-t confidence interval of a 1-D sample."""
    arr = np.asarray(sample, dtype=float)
    if arr.ndim != 1 or arr.size == 0:
        raise ValueError("sample must be a non-empty 1-D array")
    if not 0 < confidence < 1:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    n = arr.size
    mean = float(arr.mean())
    std = float(arr.std(ddof=1)) if n > 1 else 0.0
    if n > 1 and std > 0:
        half = float(
            stats.t.ppf(0.5 + confidence / 2, df=n - 1) * std / np.sqrt(n)
        )
    else:
        half = 0.0
    return Summary(
        n=n,
        mean=mean,
        std=std,
        ci_low=mean - half,
        ci_high=mean + half,
        confidence=confidence,
    )


def significantly_greater(
    a, b, alpha: float = 0.01
) -> tuple[bool, float]:
    """Welch's one-sided t-test: is ``mean(a) > mean(b)`` significant?

    Returns ``(significant, p_value)``.  Used by the benchmarks to
    assert that e.g. ``Comm_hom/k``'s ratio genuinely dominates
    ``Comm_het``'s rather than fluctuating above it.
    """
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    if a.size < 2 or b.size < 2:
        raise ValueError("need at least two observations per sample")
    t_stat, p_two = stats.ttest_ind(a, b, equal_var=False)
    p_one = p_two / 2 if t_stat > 0 else 1 - p_two / 2
    return bool(t_stat > 0 and p_one < alpha), float(p_one)


def paired_speedup_summary(
    baseline, improved, confidence: float = 0.95
) -> Summary:
    """CI of the per-trial ratio ``baseline / improved`` (paired).

    E.g. per-trial ρ = Comm_hom / Comm_het across the Figure-4 cloud.
    """
    base = np.asarray(baseline, dtype=float)
    imp = np.asarray(improved, dtype=float)
    if base.shape != imp.shape:
        raise ValueError("paired samples must share a shape")
    if np.any(imp <= 0):
        raise ValueError("improved sample must be strictly positive")
    return summarize(base / imp, confidence=confidence)
