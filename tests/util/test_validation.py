"""Tests for repro.util.validation."""

import numpy as np
import pytest

from repro.util.validation import (
    check_in_range,
    check_integer,
    check_nonnegative,
    check_positive,
    check_positive_array,
    check_probability_vector,
)


class TestScalars:
    def test_positive_accepts_and_returns(self):
        assert check_positive(2.5, "x") == 2.5

    @pytest.mark.parametrize("bad", [0, -1, float("nan"), float("inf")])
    def test_positive_rejects(self, bad):
        with pytest.raises(ValueError, match="x"):
            check_positive(bad, "x")

    def test_nonnegative_accepts_zero(self):
        assert check_nonnegative(0.0, "x") == 0.0

    def test_nonnegative_rejects_negative(self):
        with pytest.raises(ValueError):
            check_nonnegative(-0.1, "x")

    def test_in_range_inclusive(self):
        assert check_in_range(1.0, "x", 1.0, 2.0) == 1.0

    def test_in_range_exclusive(self):
        with pytest.raises(ValueError):
            check_in_range(1.0, "x", 1.0, 2.0, inclusive=False)


class TestArrays:
    def test_positive_array_roundtrip(self):
        out = check_positive_array([1, 2, 3], "v")
        assert out.dtype == float
        assert np.array_equal(out, [1.0, 2.0, 3.0])

    @pytest.mark.parametrize(
        "bad", [[], [0.0], [1.0, -2.0], [np.nan], [[1.0, 2.0]]]
    )
    def test_positive_array_rejects(self, bad):
        with pytest.raises(ValueError):
            check_positive_array(bad, "v")

    def test_probability_vector_accepts(self):
        out = check_probability_vector([0.25, 0.75], "v")
        assert out.sum() == pytest.approx(1.0)

    def test_probability_vector_rejects_bad_sum(self):
        with pytest.raises(ValueError, match="sum"):
            check_probability_vector([0.5, 0.6], "v")

    def test_probability_vector_rejects_negative(self):
        with pytest.raises(ValueError):
            check_probability_vector([-0.1, 1.1], "v")


class TestInteger:
    def test_accepts_numpy_int(self):
        assert check_integer(np.int64(3), "n") == 3

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            check_integer(True, "n")

    def test_rejects_float(self):
        with pytest.raises(TypeError):
            check_integer(2.0, "n")

    def test_minimum_enforced(self):
        with pytest.raises(ValueError):
            check_integer(0, "n", minimum=1)
