"""Section 2 — non-linear workloads are not amenable to DLT.

The paper's core negative result, reproduced here as executable
arithmetic.  For a workload of total size ``N`` with cost
:math:`W = N^\\alpha` on a *homogeneous* star of ``P`` workers:

* each worker optimally receives :math:`N/P` data and finishes at
  :math:`(N/P)c + (N/P)^\\alpha w`;
* the work actually performed in this single round is
  :math:`W_\\text{partial} = P (N/P)^\\alpha = N^\\alpha / P^{\\alpha-1}`;
* hence the *residual fraction*

  .. math:: \\frac{W - W_\\text{partial}}{W} = 1 - \\frac{1}{P^{\\alpha-1}}
     \\xrightarrow{P \\to \\infty} 1.

So as the platform grows, essentially *all* of the work remains after
the phase the non-linear-DLT literature optimises — there is no free
lunch.  These functions also quantify how many successive rounds a
split-recombine scheme would need, making the contrast with the linear
case concrete.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.validation import check_integer, check_positive


def total_work(N: float, alpha: float) -> float:
    """Sequential work :math:`W = N^\\alpha` of the whole load."""
    check_positive(N, "N")
    check_positive(alpha, "alpha")
    return float(N**alpha)


def partial_work(N: float, P: int, alpha: float) -> float:
    """Work done by one DLT round on ``P`` homogeneous workers.

    :math:`W_\\text{partial} = P \\cdot (N/P)^\\alpha = N^\\alpha / P^{\\alpha-1}`.
    """
    check_positive(N, "N")
    check_integer(P, "P", minimum=1)
    check_positive(alpha, "alpha")
    return float(P * (N / P) ** alpha)


def partial_work_fraction(P: int, alpha: float) -> float:
    """Fraction of total work done in the DLT round: :math:`P^{1-\\alpha}`.

    Independent of ``N`` — the non-linearity exponent alone decides how
    badly divisibility fails.
    """
    check_integer(P, "P", minimum=1)
    check_positive(alpha, "alpha")
    return float(P ** (1.0 - alpha))


def residual_fraction(P: int, alpha: float) -> float:
    """Fraction of work *left over* after the DLT round.

    :math:`(W - W_\\text{partial}) / W = 1 - 1/P^{\\alpha-1}` — the
    paper's headline formula, tending to 1 for large ``P`` whenever
    :math:`\\alpha > 1`.
    """
    return 1.0 - partial_work_fraction(P, alpha)


def speedup_single_round(P: int, alpha: float) -> float:
    """Best-case speedup of one round over sequential execution.

    Ignoring communication, one round takes :math:`(N/P)^\\alpha w`
    versus :math:`N^\\alpha w` sequentially — a speedup of
    :math:`P^\\alpha`, *but only on the fraction it processes*.  The
    effective speedup of "round + sequential remainder" is what
    :func:`rounds_to_finish` and :func:`dlt_phase_report` expose.
    """
    check_integer(P, "P", minimum=1)
    check_positive(alpha, "alpha")
    return float(P**alpha)


def rounds_to_finish(P: int, alpha: float, coverage: float = 0.99) -> int:
    """Number of *independent* equal-split rounds to cover the work.

    Thought experiment used in §2's discussion: if one insisted on
    repeatedly applying single-round DLT to the remaining work (assuming,
    optimistically, that leftover work kept the same :math:`N^\\alpha`
    structure), each round covers a :math:`P^{1-\\alpha}` fraction, so
    reaching ``coverage`` of the total needs

    .. math:: r \\ge \\frac{\\ln(1 - \\text{coverage})}
                     {\\ln(1 - P^{1-\\alpha})}

    rounds.  For linear loads (:math:`\\alpha = 1`) a single round covers
    everything; for :math:`\\alpha = 2` and large ``P`` this grows like
    :math:`P \\ln(1/(1-\\text{coverage}))` — divisibility has bought
    nothing.
    """
    check_integer(P, "P", minimum=1)
    check_positive(alpha, "alpha")
    if not 0 < coverage < 1:
        raise ValueError(f"coverage must be in (0, 1), got {coverage}")
    frac = partial_work_fraction(P, alpha)
    if frac >= 1.0:
        return 1
    return int(np.ceil(np.log(1.0 - coverage) / np.log(1.0 - frac)))


def _check_sizes_array(Ps) -> np.ndarray:
    P = np.asarray(Ps, dtype=float)
    if P.ndim != 1 or P.size == 0:
        raise ValueError(f"Ps must be a non-empty 1-D array, got shape {P.shape}")
    if not np.all(np.isfinite(P)) or np.any(P < 1) or np.any(P != np.floor(P)):
        raise ValueError("Ps must contain integers >= 1")
    return P


def partial_work_fraction_many(Ps, alpha: float) -> np.ndarray:
    """Vectorised :func:`partial_work_fraction` over platform sizes.

    One ``P ** (1 - alpha)`` array expression for a whole sweep of
    platform sizes — the same elementwise op the scalar form applies,
    so ``partial_work_fraction_many(Ps, alpha)[i]`` is bit-identical to
    ``partial_work_fraction(Ps[i], alpha)``.
    """
    check_positive(alpha, "alpha")
    return _check_sizes_array(Ps) ** (1.0 - alpha)


def residual_fraction_many(Ps, alpha: float) -> np.ndarray:
    """Vectorised :func:`residual_fraction`: ``1 - P**(1-alpha)``."""
    return 1.0 - partial_work_fraction_many(Ps, alpha)


def rounds_to_finish_many(
    Ps, alpha: float, coverage: float = 0.99
) -> np.ndarray:
    """Vectorised :func:`rounds_to_finish` over platform sizes.

    Same formula, one log/ceil pass; rows with full single-round
    coverage report 1 exactly like the scalar early return.
    """
    check_positive(alpha, "alpha")
    if not 0 < coverage < 1:
        raise ValueError(f"coverage must be in (0, 1), got {coverage}")
    frac = partial_work_fraction_many(Ps, alpha)
    rounds = np.ones(frac.shape, dtype=int)
    todo = frac < 1.0
    rounds[todo] = np.ceil(
        np.log(1.0 - coverage) / np.log(1.0 - frac[todo])
    ).astype(int)
    return rounds


@dataclass(frozen=True)
class DLTPhaseReport:
    """Everything §2 says about one DLT round on a homogeneous star."""

    N: float
    P: int
    alpha: float
    c: float
    w: float
    #: data per worker, ``N/P``
    chunk: float
    #: makespan of the round, ``(N/P)c + (N/P)^alpha w``
    round_makespan: float
    #: total sequential work ``N^alpha``
    total_work: float
    #: work covered by the round
    partial_work: float
    #: ``partial_work / total_work`` = ``P^(1-alpha)``
    covered_fraction: float
    #: ``1 - covered_fraction`` → 1 as P grows (the "no free lunch")
    residual_fraction: float
    #: time to process the *residual* sequentially at cycle time ``w``
    residual_sequential_time: float

    def summary(self) -> str:
        """One-paragraph human-readable statement of the result."""
        return (
            f"One DLT round on P={self.P} workers (alpha={self.alpha}): "
            f"each worker gets {self.chunk:.6g} data, round ends at "
            f"t={self.round_makespan:.6g}, but covers only "
            f"{100 * self.covered_fraction:.3g}% of the total work — "
            f"{100 * self.residual_fraction:.3g}% remains."
        )


def dlt_phase_report(
    N: float, P: int, alpha: float, c: float = 1.0, w: float = 1.0
) -> DLTPhaseReport:
    """Quantify one equal-split DLT round (§2's homogeneous analysis)."""
    check_positive(N, "N")
    check_integer(P, "P", minimum=1)
    check_positive(alpha, "alpha")
    check_positive(c, "c")
    check_positive(w, "w")
    chunk = N / P
    round_makespan = chunk * c + (chunk**alpha) * w
    W = total_work(N, alpha)
    Wp = partial_work(N, P, alpha)
    return DLTPhaseReport(
        N=float(N),
        P=int(P),
        alpha=float(alpha),
        c=float(c),
        w=float(w),
        chunk=float(chunk),
        round_makespan=float(round_makespan),
        total_work=W,
        partial_work=Wp,
        covered_fraction=Wp / W,
        residual_fraction=1.0 - Wp / W,
        residual_sequential_time=(W - Wp) * w,
    )


def linear_contrast(N: float, P: int, c: float = 1.0, w: float = 1.0) -> float:
    """Makespan of the same round for a *linear* load (for contrast).

    Every worker receives ``N/P`` and the whole job is done at
    :math:`(N/P)(c + w)` — full coverage, perfect speedup ``P`` on the
    compute part.  Comparing this with
    :attr:`DLTPhaseReport.residual_fraction` is the crux of §2.
    """
    check_positive(N, "N")
    check_integer(P, "P", minimum=1)
    return float((N / P) * (c + w))
