"""Terminal line charts — Figure 4 without matplotlib.

Offline reproduction means no plotting stack; these renderers draw
multi-series line charts with unicode-free ASCII so the figure panels
can be *seen*, not just tabulated.  Each series gets a glyph; points
are plotted on a character grid with a labelled y-axis and the x values
along the bottom.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

_GLYPHS = "ox+*#@%&"


def ascii_chart(
    x_values: Sequence[float],
    series: Mapping[str, Sequence[float]],
    width: int = 64,
    height: int = 16,
    title: str | None = None,
    y_label: str = "",
    log_y: bool = False,
) -> str:
    """Render named series against shared x values as an ASCII chart.

    ``log_y`` switches the y axis to log10 — useful for Figure 4(b/c)
    where ``hom/k`` dwarfs ``het``.  Returns the chart as a string.
    """
    if width < 20 or height < 5:
        raise ValueError("chart needs width >= 20 and height >= 5")
    x = np.asarray(x_values, dtype=float)
    if x.size == 0:
        return "(empty chart)"
    names = list(series)
    if len(names) > len(_GLYPHS):
        raise ValueError(f"at most {len(_GLYPHS)} series supported")
    ys = {}
    for name in names:
        arr = np.asarray(series[name], dtype=float)
        if arr.shape != x.shape:
            raise ValueError(f"series {name!r} length mismatch")
        if log_y:
            if np.any(arr <= 0):
                raise ValueError("log_y requires positive values")
            arr = np.log10(arr)
        ys[name] = arr

    all_y = np.concatenate(list(ys.values()))
    y_min, y_max = float(all_y.min()), float(all_y.max())
    if y_max == y_min:
        y_max = y_min + 1.0
    x_min, x_max = float(x.min()), float(x.max())
    if x_max == x_min:
        x_max = x_min + 1.0

    grid = [[" "] * width for _ in range(height)]
    for gi, name in enumerate(names):
        glyph = _GLYPHS[gi]
        for xv, yv in zip(x, ys[name]):
            col = int(round((xv - x_min) / (x_max - x_min) * (width - 1)))
            row = int(round((yv - y_min) / (y_max - y_min) * (height - 1)))
            grid[height - 1 - row][col] = glyph

    def fmt_y(v: float) -> str:
        real = 10**v if log_y else v
        return f"{real:.3g}"

    label_w = max(len(fmt_y(y_max)), len(fmt_y(y_min))) + 1
    lines = []
    if title:
        lines.append(title)
    for r, row in enumerate(grid):
        if r == 0:
            label = fmt_y(y_max)
        elif r == height - 1:
            label = fmt_y(y_min)
        else:
            label = ""
        lines.append(f"{label.rjust(label_w)} |{''.join(row)}|")
    axis = " " * label_w + " +" + "-" * width + "+"
    lines.append(axis)
    x_line = (
        " " * label_w
        + "  "
        + f"{x_min:.3g}".ljust(width - len(f"{x_max:.3g}"))
        + f"{x_max:.3g}"
    )
    lines.append(x_line)
    legend = "  ".join(
        f"{_GLYPHS[i]}={name}" for i, name in enumerate(names)
    )
    suffix = f"   [{y_label}]" if y_label else ""
    lines.append(" " * label_w + "  " + legend + suffix)
    return "\n".join(lines)


def figure4_chart(result, log_y: bool = True) -> str:
    """Draw a :class:`repro.experiments.figure4.Figure4Result` panel."""
    return ascii_chart(
        list(result.processors),
        dict(result.means),
        title=(
            f"Figure 4 ({result.speed_model}): ratio to lower bound "
            f"({result.trials} trials/point{', log y' if log_y else ''})"
        ),
        y_label="ratio to LB",
        log_y=log_y,
    )
