"""Legacy-install shim; ALL metadata lives in pyproject.toml (PEP 621).

Kept only so offline environments without the ``wheel`` package can
still do an editable install via the legacy path::

    pip install -e . --no-use-pep517 --no-build-isolation

Everywhere else, plain ``pip install -e .`` reads pyproject.toml.
"""

from setuptools import setup

setup()
