"""The unified planning pipeline: ``PlanRequest → PlanResult``.

Every outer-product strategy in the registry is invoked the same way:
a :class:`PlanRequest` names the platform, the problem size and the
strategy (plus free-form parameters); :func:`execute` resolves the
strategy through :mod:`repro.registry`, filters the parameters down to
what the strategy's constructor accepts, times the planning call and
wraps the outcome — together with its communication lower bound — in a
:class:`PlanResult`.  :func:`execute_all` sweeps every registered
strategy on one instance, which is how ``repro compare``, Figure 4 and
the benchmarks enumerate components instead of hard-coding them.
"""

from __future__ import annotations

import inspect
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

from repro import registry
from repro.blocks.metrics import StrategyResult
from repro.platform.star import StarPlatform
from repro.util.tables import format_table


def supported_kwargs(
    factory: Callable[..., Any], params: Mapping[str, Any]
) -> dict[str, Any]:
    """Subset of ``params`` that ``factory``'s signature accepts.

    Lets one request carry parameters for heterogeneous strategies
    (e.g. ``imbalance_target`` applies to ``hom/k`` only) without every
    strategy having to swallow ``**kwargs``.  A factory with a
    ``**kwargs`` parameter receives everything.
    """
    try:
        sig = inspect.signature(factory)
    except (TypeError, ValueError):
        return dict(params)
    accepted = set()
    for p in sig.parameters.values():
        if p.kind is inspect.Parameter.VAR_KEYWORD:
            return dict(params)
        if p.kind in (
            inspect.Parameter.POSITIONAL_OR_KEYWORD,
            inspect.Parameter.KEYWORD_ONLY,
        ):
            accepted.add(p.name)
    return {k: v for k, v in params.items() if k in accepted}


@dataclass(frozen=True)
class PlanRequest:
    """One normalized planning job: which strategy on which instance."""

    platform: StarPlatform
    N: float
    strategy: str = "het"
    #: free-form strategy parameters; silently filtered per strategy
    params: Mapping[str, Any] = field(default_factory=dict)

    def with_strategy(self, strategy: str) -> "PlanRequest":
        """The same instance under a different strategy."""
        return PlanRequest(
            platform=self.platform,
            N=self.N,
            strategy=strategy,
            params=self.params,
        )


@dataclass(frozen=True)
class PlanResult:
    """A strategy's plan plus uniform bookkeeping (timing, LB ratio)."""

    request: PlanRequest
    plan: StrategyResult
    #: wall-clock seconds spent planning (construction + .plan())
    elapsed_s: float

    @property
    def strategy(self) -> str:
        return self.request.strategy

    @property
    def comm_volume(self) -> float:
        return self.plan.comm_volume

    @property
    def lower_bound(self) -> float:
        return self.plan.lower_bound

    @property
    def ratio_to_lower_bound(self) -> float:
        return self.plan.ratio_to_lower_bound

    @property
    def imbalance(self) -> float:
        return self.plan.imbalance

    @property
    def makespan(self) -> float:
        return self.plan.makespan

    def summary(self) -> str:
        return f"{self.plan.summary()}, planned in {self.elapsed_s * 1e3:.2f} ms"


def execute(request: PlanRequest) -> PlanResult:
    """Resolve, invoke and time one strategy through the registry."""
    factory = registry.get("strategy", request.strategy)
    kwargs = supported_kwargs(factory, request.params)
    start = time.perf_counter()
    plan = factory(**kwargs).plan(request.platform, request.N)
    elapsed = time.perf_counter() - start
    return PlanResult(request=request, plan=plan, elapsed_s=elapsed)


@dataclass(frozen=True)
class PlanSweep:
    """Every requested strategy on one instance, uniformly accounted."""

    N: float
    results: Mapping[str, PlanResult]

    @property
    def ratios(self) -> dict[str, float]:
        return {
            name: res.ratio_to_lower_bound for name, res in self.results.items()
        }

    @property
    def best(self) -> PlanResult:
        """The plan with the lowest communication volume."""
        if not self.results:
            raise ValueError("empty sweep: no strategies were planned")
        return min(self.results.values(), key=lambda r: r.comm_volume)

    def render(self) -> str:
        rows = [
            [
                name,
                res.comm_volume,
                res.ratio_to_lower_bound,
                res.imbalance,
                res.elapsed_s * 1e3,
            ]
            for name, res in self.results.items()
        ]
        return format_table(
            ["strategy", "comm volume", "ratio to LB", "imbalance e", "plan ms"],
            rows,
            title=f"Strategy sweep, N={self.N:g} (best: {self.best.strategy})",
        )


def execute_all(
    platform: StarPlatform,
    N: float,
    strategies: Sequence[str] | None = None,
    **params: Any,
) -> PlanSweep:
    """Run every registered (or the named) strategies on one instance."""
    names = (
        tuple(strategies)
        if strategies is not None
        else registry.available("strategy")
    )
    results = {
        name: execute(
            PlanRequest(platform=platform, N=N, strategy=name, params=params)
        )
        for name in names
    }
    return PlanSweep(N=float(N), results=results)
