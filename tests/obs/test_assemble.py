"""Trace assembly: trees, critical paths, accounted fraction, files."""

import pytest

from repro.obs import (
    Span,
    assemble_traces,
    read_spans,
    render_trace,
    stage_stats,
)
from repro.obs.assemble import Trace, _quantile

TID = "f" * 16


def make_span(span_id, parent_id, name, start_s, duration_s, **meta):
    return Span(
        trace_id=TID,
        span_id=span_id,
        parent_id=parent_id,
        name=name,
        service="test",
        start_s=start_s,
        duration_s=duration_s,
        meta=dict(meta),
    )


def synthetic_trace():
    """client(0..10) > server(1..9) > {kernel(2..6), encode(7..8)}."""
    return [
        make_span("a" * 8, None, "client /plan", 0.0, 10.0),
        make_span("b" * 8, "a" * 8, "server /plan", 1.0, 8.0),
        make_span("c" * 8, "b" * 8, "plan_kernel", 2.0, 4.0),
        make_span("d" * 8, "b" * 8, "wire_encode", 7.0, 1.0),
    ]


class TestTraceTree:
    def test_complete_tree(self):
        (trace,) = assemble_traces(synthetic_trace())
        assert trace.complete
        assert trace.root.name == "client /plan"
        assert trace.duration_s == 10.0
        assert [
            (depth, span.name) for depth, span in trace.walk()
        ] == [
            (0, "client /plan"),
            (1, "server /plan"),
            (2, "plan_kernel"),
            (2, "wire_encode"),
        ]

    def test_children_sorted_by_start(self):
        spans = synthetic_trace()
        spans[2], spans[3] = spans[3], spans[2]  # shuffle input order
        (trace,) = assemble_traces(spans)
        server = trace.span_children(trace.root)[0]
        assert [s.name for s in trace.span_children(server)] == [
            "plan_kernel",
            "wire_encode",
        ]

    def test_orphan_marks_incomplete(self):
        spans = synthetic_trace()
        spans.append(make_span("e" * 8, "9" * 8, "lost", 3.0, 1.0))
        (trace,) = assemble_traces(spans)
        assert not trace.complete
        assert [s.name for s in trace.orphans] == ["lost"]
        assert "[INCOMPLETE]" in render_trace(trace)

    def test_critical_path_follows_longest_child(self):
        (trace,) = assemble_traces(synthetic_trace())
        assert [s.name for s in trace.critical_path()] == [
            "client /plan",
            "server /plan",
            "plan_kernel",  # 4.0s beats wire_encode's 1.0s
        ]

    def test_traces_ordered_slowest_first(self):
        fast = [
            Span(
                trace_id="0" * 16,
                span_id="a" * 8,
                parent_id=None,
                name="client /plan",
                service="test",
                start_s=0.0,
                duration_s=1.0,
            )
        ]
        traces = assemble_traces(fast + synthetic_trace())
        assert [t.trace_id for t in traces] == [TID, "0" * 16]


class TestAccountedFraction:
    def test_single_child_coverage(self):
        # root 10s, server child covers 8s of it
        (trace,) = assemble_traces(synthetic_trace())
        assert trace.accounted_fraction() == pytest.approx(0.8)

    def test_parallel_children_not_double_counted(self):
        spans = [
            make_span("a" * 8, None, "root", 0.0, 10.0),
            # two "workers" busy over the same 4s window
            make_span("b" * 8, "a" * 8, "dispatch", 2.0, 4.0),
            make_span("c" * 8, "a" * 8, "dispatch", 2.0, 4.0),
        ]
        (trace,) = assemble_traces(spans)
        assert trace.accounted_fraction() == pytest.approx(0.4)

    def test_disjoint_children_sum(self):
        spans = [
            make_span("a" * 8, None, "root", 0.0, 10.0),
            make_span("b" * 8, "a" * 8, "x", 1.0, 2.0),
            make_span("c" * 8, "a" * 8, "y", 6.0, 3.0),
        ]
        (trace,) = assemble_traces(spans)
        assert trace.accounted_fraction() == pytest.approx(0.5)

    def test_child_clipped_to_root_window(self):
        spans = [
            make_span("a" * 8, None, "root", 0.0, 4.0),
            # drifted wall clock: child claims to outlive the root
            make_span("b" * 8, "a" * 8, "x", 2.0, 10.0),
        ]
        (trace,) = assemble_traces(spans)
        assert trace.accounted_fraction() == pytest.approx(0.5)

    def test_rootless_trace_is_zero(self):
        trace = Trace(trace_id=TID, spans=[])
        assert trace.accounted_fraction() == 0.0


class TestStageStats:
    def test_aggregates_by_name_ordered_by_total(self):
        stats = stage_stats(assemble_traces(synthetic_trace()))
        assert [s.name for s in stats] == [
            "client /plan",
            "server /plan",
            "plan_kernel",
            "wire_encode",
        ]
        kernel = stats[2]
        assert kernel.count == 1
        assert kernel.p50_s == kernel.p99_s == kernel.max_s == 4.0

    def test_quantile_upper_bound_rule(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert _quantile(values, 0.50) == 2.0
        assert _quantile(values, 0.99) == 4.0
        assert _quantile([], 0.5) == 0.0


class TestReadSpans:
    def test_round_trip_with_blank_lines(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        lines = [span.to_json_line() for span in synthetic_trace()]
        path.write_text(lines[0] + "\n\n" + "\n".join(lines[1:]) + "\n")
        spans = read_spans([str(path)])
        assert spans == synthetic_trace()

    def test_multiple_files_concatenate_in_order(self, tmp_path):
        spans = synthetic_trace()
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        a.write_text(spans[0].to_json_line() + "\n")
        b.write_text(
            "\n".join(s.to_json_line() for s in spans[1:]) + "\n"
        )
        assert read_spans([str(a), str(b)]) == spans

    def test_garbage_line_names_file_and_lineno(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            synthetic_trace()[0].to_json_line() + "\ntruncated{\n"
        )
        with pytest.raises(ValueError, match=r"bad\.jsonl:2"):
            read_spans([str(path)])

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(OSError):
            read_spans([str(tmp_path / "absent.jsonl")])
