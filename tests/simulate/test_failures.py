"""Tests for repro.simulate.failures — fail-stop + speculation."""

import numpy as np
import pytest

from repro.platform.star import StarPlatform
from repro.simulate.demand_driven import run_demand_driven, uniform_tasks
from repro.simulate.failures import (
    FailureEvent,
    random_failures,
    run_with_failures,
)


class TestNoFailureEquivalence:
    def test_matches_plain_demand_driven(self):
        """Without failures/slowdown the engine reduces to the greedy
        scheduler exactly."""
        plat = StarPlatform.from_speeds([1.0, 2.0, 3.0])
        tasks = uniform_tasks(25, work=2.0, data=1.0)
        plain = run_demand_driven(plat, tasks)
        faulty = run_with_failures(plat, tasks)
        assert faulty.makespan == pytest.approx(plain.makespan)
        assert faulty.executions.sum() == 25
        assert faulty.wasted_executions == 0
        counts = np.bincount(faulty.completed_by, minlength=3)
        assert np.array_equal(counts, plain.counts)

    def test_empty_tasks(self):
        plat = StarPlatform.homogeneous(2)
        res = run_with_failures(plat, [])
        assert res.makespan == 0.0


class TestFailStop:
    def test_in_flight_task_requeued(self):
        """One worker dies mid-task; the other finishes everything."""
        plat = StarPlatform.homogeneous(2)
        tasks = uniform_tasks(2, work=10.0)
        res = run_with_failures(
            plat, tasks, failures=[FailureEvent(worker=0, time=5.0)]
        )
        assert res.completed_by == [1, 1] or res.completed_by[0] == 1
        assert 0 in res.reexecuted
        assert res.makespan == pytest.approx(20.0)  # sequential on P2
        assert res.wasted_executions == 1  # the lost execution

    def test_completed_work_survives(self):
        """Death after finishing a task does not undo it."""
        plat = StarPlatform.homogeneous(2)
        tasks = uniform_tasks(2, work=1.0)
        res = run_with_failures(
            plat, tasks, failures=[FailureEvent(worker=0, time=1.0)]
        )
        assert res.reexecuted == []
        assert res.makespan == pytest.approx(1.0)

    def test_dead_worker_takes_no_new_tasks(self):
        plat = StarPlatform.homogeneous(2)
        tasks = uniform_tasks(6, work=1.0)
        res = run_with_failures(
            plat, tasks, failures=[FailureEvent(worker=0, time=0.0)]
        )
        counts = np.bincount(res.completed_by, minlength=2)
        assert counts[0] == 0
        assert counts[1] == 6

    def test_all_dead_raises(self):
        plat = StarPlatform.homogeneous(2)
        tasks = uniform_tasks(3, work=10.0)
        with pytest.raises(RuntimeError, match="died"):
            run_with_failures(
                plat,
                tasks,
                failures=[FailureEvent(0, 1.0), FailureEvent(1, 1.0)],
            )

    def test_unknown_worker_rejected(self):
        plat = StarPlatform.homogeneous(2)
        with pytest.raises(ValueError):
            run_with_failures(
                plat, uniform_tasks(1, 1.0), failures=[FailureEvent(5, 1.0)]
            )

    def test_failure_increases_makespan(self):
        plat = StarPlatform.homogeneous(4)
        tasks = uniform_tasks(40, work=1.0)
        healthy = run_with_failures(plat, tasks)
        degraded = run_with_failures(
            plat, tasks, failures=[FailureEvent(0, 2.0)]
        )
        assert degraded.makespan > healthy.makespan

    def test_data_shipped_counts_reexecution(self):
        plat = StarPlatform.homogeneous(2)
        tasks = uniform_tasks(2, work=10.0, data=3.0)
        res = run_with_failures(
            plat, tasks, failures=[FailureEvent(worker=0, time=5.0)]
        )
        # 3 executions x 3.0 data (one wasted)
        assert res.data_shipped.sum() == pytest.approx(9.0)


class TestStragglersAndSpeculation:
    def test_slowdown_validated(self):
        plat = StarPlatform.homogeneous(2)
        with pytest.raises(ValueError):
            run_with_failures(plat, uniform_tasks(1, 1.0), slowdown=[0.5, 1.0])

    def test_straggler_hurts_without_speculation(self):
        plat = StarPlatform.homogeneous(2)
        tasks = uniform_tasks(2, work=10.0)
        res = run_with_failures(plat, tasks, slowdown=[10.0, 1.0])
        assert res.makespan == pytest.approx(100.0)

    def test_speculation_rescues_straggler(self):
        """The §1.1 mechanism: a backup copy on the fast worker wins."""
        plat = StarPlatform.homogeneous(2)
        tasks = uniform_tasks(2, work=10.0)
        res = run_with_failures(
            plat, tasks, slowdown=[10.0, 1.0], speculate=True
        )
        # fast worker does its task (10), then duplicates the straggling
        # one (10 more) — beats the straggler's 100
        assert res.makespan == pytest.approx(20.0)
        assert res.speculated == [0]
        assert res.wasted_executions >= 1

    def test_speculation_noop_when_balanced(self):
        plat = StarPlatform.homogeneous(3)
        tasks = uniform_tasks(3, work=5.0)
        res = run_with_failures(plat, tasks, speculate=True)
        assert res.speculated == []
        assert res.wasted_executions == 0

    def test_threshold_gates_speculation(self):
        """A mild straggler below the threshold is left alone."""
        plat = StarPlatform.homogeneous(2)
        tasks = uniform_tasks(2, work=10.0)
        res = run_with_failures(
            plat,
            tasks,
            slowdown=[1.2, 1.0],
            speculate=True,
            speculation_threshold=1.5,
        )
        assert res.speculated == []


class TestRandomFailures:
    def test_reproducible(self):
        plat = StarPlatform.homogeneous(10)
        a = random_failures(plat, horizon=10.0, rate=0.5, rng=3)
        b = random_failures(plat, horizon=10.0, rate=0.5, rng=3)
        assert a == b

    def test_rate_zero_none(self):
        plat = StarPlatform.homogeneous(10)
        assert random_failures(plat, 10.0, 0.0, rng=0) == []

    def test_rate_one_all(self):
        plat = StarPlatform.homogeneous(10)
        events = random_failures(plat, 10.0, 1.0, rng=0)
        assert len(events) == 10
        assert all(0 <= e.time <= 10.0 for e in events)

    def test_rate_validated(self):
        plat = StarPlatform.homogeneous(2)
        with pytest.raises(ValueError):
            random_failures(plat, 10.0, 1.5)
