"""Tests for repro.dlt.multi_round."""

import numpy as np
import pytest

from repro.dlt.multi_round import (
    best_round_count,
    multi_round_nonlinear_coverage,
    solve_multi_round,
)
from repro.dlt.single_round import solve_linear_parallel
from repro.platform.star import StarPlatform


class TestSchedule:
    def test_one_round_equals_single_round(self, heterogeneous_platform):
        single = solve_linear_parallel(heterogeneous_platform, 100.0)
        multi = solve_multi_round(heterogeneous_platform, 100.0, rounds=1)
        assert multi.makespan == pytest.approx(single.makespan)
        assert np.allclose(multi.amounts[:, 0], single.amounts)

    def test_conservation(self, heterogeneous_platform):
        sched = solve_multi_round(heterogeneous_platform, 120.0, rounds=4)
        assert sched.total == pytest.approx(120.0)

    def test_more_rounds_pipeline_better_without_latency(self):
        plat = StarPlatform.from_speeds([1.0, 2.0], bandwidths=[0.5, 0.5])
        t1 = solve_multi_round(plat, 100.0, rounds=1).makespan
        t4 = solve_multi_round(plat, 100.0, rounds=4).makespan
        t16 = solve_multi_round(plat, 100.0, rounds=16).makespan
        assert t16 <= t4 <= t1

    def test_timeline_monotone(self):
        plat = StarPlatform.from_speeds([1.0, 3.0])
        sched = solve_multi_round(plat, 90.0, rounds=3)
        assert np.all(np.diff(sched.receive_end, axis=1) > 0)
        assert np.all(np.diff(sched.compute_end, axis=1) > 0)
        assert np.all(sched.compute_end >= sched.receive_end)

    def test_worker_finish_view(self):
        plat = StarPlatform.homogeneous(3)
        sched = solve_multi_round(plat, 30.0, rounds=2)
        assert np.array_equal(sched.worker_finish(), sched.compute_end[:, -1])

    def test_validation(self):
        plat = StarPlatform.homogeneous(2)
        with pytest.raises(ValueError):
            solve_multi_round(plat, 10.0, rounds=0)
        with pytest.raises(ValueError):
            solve_multi_round(plat, 10.0, rounds=2, comm_latency=-1.0)


class TestBestRoundCount:
    def test_latency_creates_interior_optimum(self):
        plat = StarPlatform.from_speeds([1.0, 1.0], bandwidths=[0.2, 0.2])
        r_free, _ = best_round_count(plat, 200.0, comm_latency=0.0, max_rounds=32)
        r_lat, _ = best_round_count(plat, 200.0, comm_latency=5.0, max_rounds=32)
        assert r_free >= r_lat
        assert r_lat < 32  # latency stops the "more rounds" greed

    def test_returns_achievable_makespan(self):
        plat = StarPlatform.homogeneous(2)
        r, t = best_round_count(plat, 100.0, comm_latency=1.0, max_rounds=8)
        assert t == pytest.approx(
            solve_multi_round(plat, 100.0, r, comm_latency=1.0).makespan
        )


class TestNonlinearCoverage:
    def test_more_rounds_cover_less_superlinear_work(self):
        """§2 extended: finer chunks destroy more N^alpha work."""
        plat = StarPlatform.homogeneous(4)
        c1 = multi_round_nonlinear_coverage(plat, 100.0, alpha=2.0, rounds=1)
        c4 = multi_round_nonlinear_coverage(plat, 100.0, alpha=2.0, rounds=4)
        assert c4 < c1

    def test_homogeneous_closed_form(self):
        """(P R)^(1-alpha) for equal splits."""
        plat = StarPlatform.homogeneous(5)
        cov = multi_round_nonlinear_coverage(plat, 1000.0, alpha=2.0, rounds=3)
        assert cov == pytest.approx((5 * 3) ** (1 - 2.0), rel=1e-9)

    def test_linear_unaffected_by_rounds(self):
        plat = StarPlatform.homogeneous(4)
        assert multi_round_nonlinear_coverage(
            plat, 100.0, alpha=1.0, rounds=7
        ) == pytest.approx(1.0)
