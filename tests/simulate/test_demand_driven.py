"""Tests for repro.simulate.demand_driven — the MapReduce scheduler."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.platform.star import StarPlatform
from repro.simulate.demand_driven import (
    Task,
    identical_task_schedule,
    proportional_share_counts,
    run_demand_driven,
    uniform_tasks,
)


class TestTask:
    def test_validation(self):
        with pytest.raises(ValueError):
            Task(work=-1.0)
        with pytest.raises(ValueError):
            Task(work=1.0, data=-0.5)


class TestGreedy:
    def test_conservation(self, heterogeneous_platform):
        tasks = uniform_tasks(37, work=2.0, data=1.0)
        res = run_demand_driven(heterogeneous_platform, tasks)
        assert res.counts.sum() == 37
        assert res.total_data == pytest.approx(37.0)

    def test_faster_worker_gets_more(self):
        plat = StarPlatform.from_speeds([1.0, 10.0])
        res = run_demand_driven(plat, uniform_tasks(110, work=1.0))
        assert res.counts[1] == 100
        assert res.counts[0] == 10

    def test_ties_prefer_lower_index(self):
        plat = StarPlatform.homogeneous(3)
        res = run_demand_driven(plat, uniform_tasks(1, work=1.0))
        assert res.counts.tolist() == [1, 0, 0]

    def test_makespan_is_max_finish(self, heterogeneous_platform):
        res = run_demand_driven(heterogeneous_platform, uniform_tasks(20, 1.0))
        assert res.makespan == pytest.approx(res.finish_times.max())

    def test_empty_bag(self, homogeneous_platform):
        res = run_demand_driven(homogeneous_platform, [])
        assert res.makespan == 0.0
        assert res.load_imbalance == 0.0

    def test_mixed_task_sizes_assignment_order(self):
        plat = StarPlatform.homogeneous(2)
        tasks = [Task(work=10.0), Task(work=1.0), Task(work=1.0)]
        res = run_demand_driven(plat, tasks)
        # big task to P1, the two small to P2
        assert res.assignment[0] == [0]
        assert res.assignment[1] == [1, 2]

    def test_greedy_bounded_by_lpt_gap(self):
        """List scheduling is a 2-approximation: makespan <= ideal + max task."""
        rng = np.random.default_rng(1)
        plat = StarPlatform.from_speeds(rng.uniform(1, 10, 5))
        works = rng.uniform(0.5, 5.0, 60)
        res = run_demand_driven(plat, [Task(work=w) for w in works])
        ideal = works.sum() / plat.total_speed
        max_task = works.max() / plat.speeds.min()
        assert res.makespan <= ideal + max_task + 1e-9


class TestLoadImbalance:
    def test_zero_for_perfect_balance(self):
        plat = StarPlatform.homogeneous(2)
        res = run_demand_driven(plat, uniform_tasks(4, work=1.0))
        assert res.load_imbalance == pytest.approx(0.0)

    def test_inf_when_worker_starved(self):
        plat = StarPlatform.homogeneous(3)
        res = run_demand_driven(plat, uniform_tasks(2, work=1.0))
        assert res.load_imbalance == float("inf")

    def test_single_worker_zero(self):
        plat = StarPlatform.homogeneous(1)
        res = run_demand_driven(plat, uniform_tasks(5, work=1.0))
        assert res.load_imbalance == 0.0


class TestClosedForm:
    @given(
        speeds=st.lists(
            st.floats(min_value=0.5, max_value=20.0), min_size=1, max_size=8
        ),
        n_tasks=st.integers(min_value=0, max_value=150),
    )
    @settings(max_examples=60, deadline=None)
    def test_matches_heap_exactly(self, speeds, n_tasks):
        """The O(p log) closed form reproduces the heap greedy."""
        plat = StarPlatform.from_speeds(speeds)
        counts, finish = identical_task_schedule(plat, n_tasks, 1.3)
        res = run_demand_driven(plat, uniform_tasks(n_tasks, 1.3))
        assert counts.tolist() == res.counts.tolist()
        assert np.allclose(finish, res.finish_times, rtol=1e-9)

    def test_float_accumulated_tie_matches_heap(self):
        # Regression: worker 0's 52nd task and worker 1's 37th task both
        # start at exactly T=3.9 in real arithmetic, but the heap's
        # free_at accumulates by repeated addition and the two sums
        # round differently — the closed form must release the tied
        # task the heap would actually skip, not just the higher index.
        plat = StarPlatform.from_speeds([17.0, 12.0])
        counts, finish = identical_task_schedule(plat, 88, 1.3)
        res = run_demand_driven(plat, uniform_tasks(88, 1.3))
        assert counts.tolist() == res.counts.tolist() == [51, 37]
        assert np.allclose(finish, res.finish_times, rtol=1e-9)

    def test_huge_task_count_is_fast_and_balanced(self):
        plat = StarPlatform.from_speeds([1.0, 3.0, 7.0])
        counts, finish = identical_task_schedule(plat, 1_000_000, 1.0)
        assert counts.sum() == 1_000_000
        # asymptotically proportional to speeds
        assert counts[2] / counts[0] == pytest.approx(7.0, rel=0.01)
        e = (finish.max() - finish.min()) / finish.min()
        assert e < 1e-4

    def test_zero_tasks(self):
        plat = StarPlatform.homogeneous(2)
        counts, finish = identical_task_schedule(plat, 0, 1.0)
        assert counts.sum() == 0
        assert np.all(finish == 0)


class TestProportionalShares:
    def test_sums_to_total(self, heterogeneous_platform):
        counts = proportional_share_counts(heterogeneous_platform, 100)
        assert counts.sum() == 100

    def test_proportionality(self):
        plat = StarPlatform.from_speeds([1.0, 3.0])
        counts = proportional_share_counts(plat, 40)
        assert counts.tolist() == [10, 30]

    def test_rounding_remainder_to_largest_fraction(self):
        plat = StarPlatform.from_speeds([1.0, 1.0, 1.0])
        counts = proportional_share_counts(plat, 4)
        assert counts.sum() == 4
        assert counts.max() - counts.min() <= 1
