"""The *criticized* non-linear DLT allocator ([31]–[35]), done right.

Hung & Robertazzi and Suresh et al. pose the problem: distribute ``N``
data units of an :math:`N^\\alpha`-cost load over heterogeneous workers
so that all finish simultaneously, minimising the makespan of this
single round.  §2's point is **not** that this problem is unsolvable —
we solve it exactly below — but that its solution is *futile*: the round
covers a vanishing :math:`\\sim 1/P^{\\alpha-1}` fraction of the total
work.  Having the genuine optimum lets the §2 experiments measure that
fraction rather than assume it.

Parallel links
--------------
Worker *i* finishes at :math:`f_i(n) = c_i n + w_i n^\\alpha`, strictly
increasing in ``n``.  For a target makespan ``T``, each worker's chunk
is the unique root :math:`n_i(T) = f_i^{-1}(T)`; the total
:math:`\\sum_i n_i(T)` is continuous and strictly increasing in ``T``,
so the optimal ``T`` solving :math:`\\sum_i n_i(T) = N` is found by
bisection (all workers finish exactly together — the standard
equal-finish-time optimality argument applies because ``f_i`` are
increasing and any imbalance can be traded profitably).

One-port
--------
With sequential communications the construction is nested: for a target
``T``, chunk :math:`n_1` solves :math:`c_1 n + w_1 n^\\alpha = T`; the
next worker's transfer starts at :math:`c_1 n_1`, and so on.  The total
distributed is again monotone non-increasing in the start offsets and
increasing in ``T`` (each :math:`n_j(T)` is non-decreasing in ``T``
because a larger budget both shifts the start earlier relative to the
deadline and allows more compute), so the same outer bisection applies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.nonlinear import partial_work_fraction
from repro.platform.star import StarPlatform
from repro.registry import register
from repro.util.validation import check_positive

_BISECT_ITERS = 200
_REL_TOL = 1e-13


@dataclass(frozen=True)
class NonlinearAllocation:
    """Equal-finish-time allocation of an :math:`N^\\alpha` load."""

    amounts: np.ndarray
    finish: np.ndarray
    makespan: float
    alpha: float
    model: str
    #: work performed this round: Σ n_i^α
    partial_work: float
    #: total sequential work N^α
    total_work: float

    @property
    def covered_fraction(self) -> float:
        """Share of the whole job's work done by this round (§2)."""
        return self.partial_work / self.total_work

    @property
    def residual_fraction(self) -> float:
        """Share of work remaining after the round — tends to 1."""
        return 1.0 - self.covered_fraction

    @property
    def total(self) -> float:
        """Total data distributed."""
        return float(self.amounts.sum())


def _invert_finish(c: float, w: float, alpha: float, T: float) -> float:
    """Solve ``c*n + w*n**alpha = T`` for ``n >= 0`` (monotone bisection)."""
    if T <= 0:
        return 0.0
    # Upper bound: n <= T/c and n <= (T/w)**(1/alpha).
    hi = min(T / c, (T / w) ** (1.0 / alpha))
    lo = 0.0
    f = lambda n: c * n + w * n**alpha  # noqa: E731 - local helper
    if f(hi) < T:  # numerical safety; cannot happen mathematically
        return hi
    for _ in range(_BISECT_ITERS):
        mid = 0.5 * (lo + hi)
        if f(mid) < T:
            lo = mid
        else:
            hi = mid
        if hi - lo <= _REL_TOL * max(1.0, hi):
            break
    return 0.5 * (lo + hi)


def _amounts_parallel(
    c: np.ndarray, w: np.ndarray, alpha: float, T: float
) -> np.ndarray:
    return np.array(
        [_invert_finish(ci, wi, alpha, T) for ci, wi in zip(c, w)]
    )


def _invert_finish_many(c, w, alpha: float, T) -> np.ndarray:
    """Vectorised :func:`_invert_finish` over broadcastable arrays.

    Runs the same bracketed bisection for every element at once.
    ``T <= 0`` elements clamp to a zero-width bracket and come out 0,
    matching the scalar early return.  Elements whose interval already
    passed the tolerance keep bisecting until the whole batch has
    converged — the interval only tightens further, so both paths land
    within the bisection tolerance of the same root, which is what the
    ``rtol=1e-12`` equivalence contract requires.  The loop body is
    kept to a handful of elementwise NumPy ops (the convergence test
    runs every fourth iteration) because the one-port solver calls this
    on small arrays thousands of times per batch.
    """
    cc = np.asarray(c, dtype=float)
    ww = np.asarray(w, dtype=float)
    tt = np.asarray(T, dtype=float)
    if not (cc.shape == ww.shape == tt.shape):
        cc, ww, tt = np.broadcast_arrays(cc, ww, tt)
    # T <= 0 → root 0, via an empty [0, 0] bracket (scalar early return)
    tt = np.maximum(tt, 0.0)
    # Upper bound: n <= T/c and n <= (T/w)**(1/alpha).
    hi = np.minimum(tt / cc, (tt / ww) ** (1.0 / alpha))
    lo = np.zeros_like(hi)
    # numerical safety; cannot happen mathematically
    early = cc * hi + ww * hi**alpha < tt
    for i in range(_BISECT_ITERS):
        mid = 0.5 * (lo + hi)
        less = cc * mid + ww * mid**alpha < tt
        lo = np.where(less, mid, lo)
        hi = np.where(less, hi, mid)
        if (i & 3) == 3 and (
            (hi - lo) <= _REL_TOL * np.maximum(1.0, hi)
        ).all():
            break
    return np.where(early, hi, 0.5 * (lo + hi))


@register(
    "dlt_solver",
    "nonlinear-parallel",
    summary="Equal-finish-time allocation of an N^alpha load, parallel links (§2)",
)
def solve_nonlinear_parallel(
    platform: StarPlatform, N: float, alpha: float = 2.0
) -> NonlinearAllocation:
    """Optimal single-round allocation of an :math:`N^\\alpha` load.

    Parallel-links star, heterogeneous workers.  All workers finish at
    the same instant (asserted in tests); for homogeneous platforms this
    degenerates to the §2 closed form ``n_i = N/P``.
    """
    check_positive(N, "N")
    check_positive(alpha, "alpha")
    c = platform.comm_times
    w = platform.cycle_times

    # Bracket the makespan: the slowest single worker doing all of N is
    # an upper bound; zero is a lower bound.
    T_hi = float(np.min(c * N + w * N**alpha))  # fastest-alone time bounds below
    # Ensure T_hi really over-distributes:
    while _amounts_parallel(c, w, alpha, T_hi).sum() < N:
        T_hi *= 2.0
    T_lo = 0.0
    for _ in range(_BISECT_ITERS):
        T_mid = 0.5 * (T_lo + T_hi)
        if _amounts_parallel(c, w, alpha, T_mid).sum() < N:
            T_lo = T_mid
        else:
            T_hi = T_mid
        if T_hi - T_lo <= _REL_TOL * max(1.0, T_hi):
            break
    T = 0.5 * (T_lo + T_hi)
    amounts = _amounts_parallel(c, w, alpha, T)
    # Normalise the residual rounding error onto the amounts so they sum
    # exactly to N (keeps conservation exact for downstream accounting).
    amounts *= N / amounts.sum()
    finish = c * amounts + w * amounts**alpha
    partial = float(np.sum(amounts**alpha))
    return NonlinearAllocation(
        amounts=amounts,
        finish=finish,
        makespan=float(finish.max()),
        alpha=float(alpha),
        model="nonlinear/parallel-links",
        partial_work=partial,
        total_work=float(N**alpha),
    )


def _amounts_one_port(
    c: np.ndarray, w: np.ndarray, alpha: float, T: float, order: np.ndarray
) -> np.ndarray:
    amounts = np.zeros(c.size, dtype=float)
    start = 0.0
    for idx in order:
        budget = T - start
        if budget <= 0:
            break
        n = _invert_finish(c[idx], w[idx], alpha, budget)
        amounts[idx] = n
        start += c[idx] * n
    return amounts


@register(
    "dlt_solver",
    "nonlinear-one-port",
    summary="Equal-finish-time allocation of an N^alpha load, one-port (§2)",
)
def solve_nonlinear_one_port(
    platform: StarPlatform,
    N: float,
    alpha: float = 2.0,
    order: Sequence[int] | None = None,
) -> NonlinearAllocation:
    """Equal-finish-time allocation under one-port communications.

    This is the formulation actually studied by [33]–[35] ("single level
    tree network"); order defaults to non-decreasing :math:`c_i`.
    """
    check_positive(N, "N")
    check_positive(alpha, "alpha")
    c = platform.comm_times
    w = platform.cycle_times
    p = platform.size
    if order is None:
        order = np.argsort(c, kind="stable")
    order = np.asarray(order, dtype=int)
    if sorted(order.tolist()) != list(range(p)):
        raise ValueError(f"order must be a permutation of 0..{p - 1}")

    T_hi = float(np.min(c * N + w * N**alpha))
    while _amounts_one_port(c, w, alpha, T_hi, order).sum() < N:
        T_hi *= 2.0
    T_lo = 0.0
    for _ in range(_BISECT_ITERS):
        T_mid = 0.5 * (T_lo + T_hi)
        if _amounts_one_port(c, w, alpha, T_mid, order).sum() < N:
            T_lo = T_mid
        else:
            T_hi = T_mid
        if T_hi - T_lo <= _REL_TOL * max(1.0, T_hi):
            break
    T = 0.5 * (T_lo + T_hi)
    amounts = _amounts_one_port(c, w, alpha, T, order)
    amounts *= N / amounts.sum()

    finish = np.zeros(p, dtype=float)
    start = 0.0
    for idx in order:
        start += c[idx] * amounts[idx]
        finish[idx] = start + w[idx] * amounts[idx] ** alpha
    partial = float(np.sum(amounts**alpha))
    return NonlinearAllocation(
        amounts=amounts,
        finish=finish,
        makespan=float(finish.max()),
        alpha=float(alpha),
        model="nonlinear/one-port",
        partial_work=partial,
        total_work=float(N**alpha),
    )


def _group_platforms_by_size(
    platforms: Sequence[StarPlatform],
) -> "dict[int, List[int]]":
    by_p: dict[int, List[int]] = {}
    for i, platform in enumerate(platforms):
        by_p.setdefault(platform.size, []).append(i)
    return by_p


def _solve_parallel_stack(
    C: np.ndarray, W: np.ndarray, alpha: float, Nv: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Stacked parallel-links solve: one bisection for ``B`` instances.

    Mirrors :func:`solve_nonlinear_parallel` exactly — same bracket,
    same doubling, same outer bisection with per-instance freeze — but
    every iteration updates all still-active rows of the ``(B, p)``
    stack with one :func:`_invert_finish_many` call.
    """
    B = Nv.size
    T_hi = np.min(C * Nv[:, None] + W * Nv[:, None] ** alpha, axis=1)
    while True:
        sums = _invert_finish_many(C, W, alpha, T_hi[:, None]).sum(axis=1)
        need = sums < Nv
        if not need.any():
            break
        T_hi[need] *= 2.0
    T_lo = np.zeros(B)
    active = np.ones(B, dtype=bool)
    for _ in range(_BISECT_ITERS):
        if not active.any():
            break
        T_mid = 0.5 * (T_lo + T_hi)
        sums = _invert_finish_many(C, W, alpha, T_mid[:, None]).sum(axis=1)
        less = sums < Nv
        take_lo = active & less
        take_hi = active & ~less
        T_lo[take_lo] = T_mid[take_lo]
        T_hi[take_hi] = T_mid[take_hi]
        active &= (T_hi - T_lo) > _REL_TOL * np.maximum(1.0, T_hi)
    T = 0.5 * (T_lo + T_hi)
    amounts = _invert_finish_many(C, W, alpha, T[:, None])
    amounts *= (Nv / amounts.sum(axis=1))[:, None]
    finish = C * amounts + W * amounts**alpha
    return amounts, finish


def solve_nonlinear_parallel_batch(
    platforms: Sequence[StarPlatform],
    Ns: Sequence[float],
    alpha: float = 2.0,
) -> List[NonlinearAllocation]:
    """Batch kernel: parallel-links allocations for many instances at once.

    Vectorised objective: collapse the nested bisections — the outer
    makespan search and the inner per-worker chunk inversions — into
    stacked ``(B, p)`` NumPy sweeps shared by every same-size platform,
    instead of ``B × p`` Python-level scalar bisections.  Per-element
    freeze masks reproduce the scalar loops' early exits, so result
    ``i`` matches ``solve_nonlinear_parallel(platforms[i], Ns[i],
    alpha)`` within the bisection tolerance (rtol 1e-12 in tests).
    Attached as ``solve_nonlinear_parallel.plan_batch`` for the
    :mod:`repro.core.vectorize` grouping seam.
    """
    if len(platforms) != len(Ns):
        raise ValueError(
            f"{len(platforms)} platforms but {len(Ns)} load sizes"
        )
    check_positive(alpha, "alpha")
    Nf = [check_positive(N, "N") for N in Ns]
    results: List[NonlinearAllocation | None] = [None] * len(platforms)
    for idxs in _group_platforms_by_size(platforms).values():
        C = np.vstack([platforms[i].comm_times for i in idxs])
        W = np.vstack([platforms[i].cycle_times for i in idxs])
        Nv = np.array([Nf[i] for i in idxs])
        amounts, finish = _solve_parallel_stack(C, W, alpha, Nv)
        for row, i in enumerate(idxs):
            a = amounts[row]
            f = finish[row]
            results[i] = NonlinearAllocation(
                amounts=a,
                finish=f,
                makespan=float(f.max()),
                alpha=float(alpha),
                model="nonlinear/parallel-links",
                partial_work=float(np.sum(a**alpha)),
                total_work=float(Nf[i] ** alpha),
            )
    return results  # type: ignore[return-value]


# Batch-kernel seam, probed via repro.core.vectorize.batch_capable.
solve_nonlinear_parallel.plan_batch = solve_nonlinear_parallel_batch


def _amounts_one_port_stack(
    C: np.ndarray,
    W: np.ndarray,
    alpha: float,
    T: np.ndarray,
    order: np.ndarray,
) -> np.ndarray:
    """Stacked :func:`_amounts_one_port`: sequential over worker rank,
    vectorised over the ``B`` instances at each rank.  An exhausted
    budget yields a zero chunk and leaves the start offset unchanged,
    which is exactly the scalar loop's early ``break``."""
    B, p = C.shape
    amounts = np.zeros((B, p))
    start = np.zeros(B)
    rows = np.arange(B)
    for k in range(p):
        idx = order[:, k]
        n = _invert_finish_many(C[rows, idx], W[rows, idx], alpha, T - start)
        amounts[rows, idx] = n
        start = start + C[rows, idx] * n
    return amounts


def _solve_one_port_stack(
    C: np.ndarray,
    W: np.ndarray,
    alpha: float,
    Nv: np.ndarray,
    order: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Stacked one-port solve mirroring :func:`solve_nonlinear_one_port`."""
    B, p = C.shape
    T_hi = np.min(C * Nv[:, None] + W * Nv[:, None] ** alpha, axis=1)
    while True:
        sums = _amounts_one_port_stack(C, W, alpha, T_hi, order).sum(axis=1)
        need = sums < Nv
        if not need.any():
            break
        T_hi[need] *= 2.0
    T_lo = np.zeros(B)
    active = np.ones(B, dtype=bool)
    for _ in range(_BISECT_ITERS):
        if not active.any():
            break
        T_mid = 0.5 * (T_lo + T_hi)
        sums = _amounts_one_port_stack(C, W, alpha, T_mid, order).sum(axis=1)
        less = sums < Nv
        take_lo = active & less
        take_hi = active & ~less
        T_lo[take_lo] = T_mid[take_lo]
        T_hi[take_hi] = T_mid[take_hi]
        active &= (T_hi - T_lo) > _REL_TOL * np.maximum(1.0, T_hi)
    T = 0.5 * (T_lo + T_hi)
    amounts = _amounts_one_port_stack(C, W, alpha, T, order)
    amounts *= (Nv / amounts.sum(axis=1))[:, None]
    finish = np.zeros((B, p))
    start = np.zeros(B)
    rows = np.arange(B)
    for k in range(p):
        idx = order[:, k]
        start = start + C[rows, idx] * amounts[rows, idx]
        finish[rows, idx] = start + W[rows, idx] * amounts[rows, idx] ** alpha
    return amounts, finish


def solve_nonlinear_one_port_batch(
    platforms: Sequence[StarPlatform],
    Ns: Sequence[float],
    alpha: float = 2.0,
    order: Sequence[int] | None = None,
) -> List[NonlinearAllocation]:
    """Batch kernel: one-port allocations for many instances at once.

    Vectorised objective: run the nested bisections for every same-size
    instance simultaneously — sequential only over the ``p`` worker
    ranks, never over the ``B`` instances — with per-element freeze
    masks standing in for the scalar early exits.  Result ``i`` matches
    ``solve_nonlinear_one_port(platforms[i], Ns[i], alpha, order)``
    within the bisection tolerance (rtol 1e-12 in tests).  An explicit
    ``order`` requires all platforms to share one size; the default is
    each platform's own stable non-decreasing-:math:`c_i` order.
    Attached as ``solve_nonlinear_one_port.plan_batch``.
    """
    if len(platforms) != len(Ns):
        raise ValueError(
            f"{len(platforms)} platforms but {len(Ns)} load sizes"
        )
    check_positive(alpha, "alpha")
    Nf = [check_positive(N, "N") for N in Ns]
    if order is not None and len({pl.size for pl in platforms}) > 1:
        raise ValueError(
            "an explicit order requires platforms of equal size"
        )
    results: List[NonlinearAllocation | None] = [None] * len(platforms)
    for p, idxs in _group_platforms_by_size(platforms).items():
        C = np.vstack([platforms[i].comm_times for i in idxs])
        W = np.vstack([platforms[i].cycle_times for i in idxs])
        Nv = np.array([Nf[i] for i in idxs])
        if order is None:
            ord_stack = np.argsort(C, axis=1, kind="stable")
        else:
            row = np.asarray(order, dtype=int)
            if sorted(row.tolist()) != list(range(p)):
                raise ValueError(
                    f"order must be a permutation of 0..{p - 1}"
                )
            ord_stack = np.broadcast_to(row, (len(idxs), p))
        amounts, finish = _solve_one_port_stack(C, W, alpha, Nv, ord_stack)
        for row_i, i in enumerate(idxs):
            a = amounts[row_i]
            f = finish[row_i]
            results[i] = NonlinearAllocation(
                amounts=a,
                finish=f,
                makespan=float(f.max()),
                alpha=float(alpha),
                model="nonlinear/one-port",
                partial_work=float(np.sum(a**alpha)),
                total_work=float(Nf[i] ** alpha),
            )
    return results  # type: ignore[return-value]


# Batch-kernel seam, mirroring solve_nonlinear_parallel.plan_batch.
solve_nonlinear_one_port.plan_batch = solve_nonlinear_one_port_batch


def homogeneous_covered_fraction(P: int, alpha: float) -> float:
    """Closed form cross-check: on homogeneous stars the solver's
    :attr:`NonlinearAllocation.covered_fraction` equals
    :math:`P^{1-\\alpha}` exactly (§2)."""
    return partial_work_fraction(P, alpha)
