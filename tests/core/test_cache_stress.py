"""Concurrency stress tests for the shared sqlite plan store.

The durable store's promise (see :class:`SQLitePlanCache`): many
threads *and* many processes may hammer one cache file with
interleaved ``get``/``put`` traffic on overlapping keys and observe

* no corruption — every read returns a complete, correct value;
* no lost writes — every key ever put is present afterwards;
* consistent statistics — ``hits + misses`` equals the exact number
  of ``get`` calls issued, across all writers.

The synthetic entries are real :class:`PlanResult` objects (pickled
whole), keyed by index so a torn or misrouted row is detectable by
content.  A final parametrized pass drives the same shared store
through :class:`PlannerSession` on every execution backend — the
configuration the CI backend matrix exercises.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor

import numpy as np
import pytest

from repro.blocks.metrics import StrategyResult
from repro.core.cache import SQLitePlanCache
from repro.core.pipeline import PlanRequest, PlanResult
from repro.core.session import PlannerSession
from repro.platform.star import StarPlatform

KEYS = 12
THREADS = 8
ROUNDS = 25


def stress_key(i: int):
    return ("stress", i)


def stress_entry(i: int) -> PlanResult:
    """A deterministic synthetic PlanResult whose content encodes ``i``."""
    speeds = np.array([1.0 + (i % 7), 2.0])
    request = PlanRequest(
        platform=StarPlatform.from_speeds(speeds.tolist()),
        N=100.0 + i,
        strategy="hom",
    )
    plan = StrategyResult(
        strategy="hom",
        N=100.0 + i,
        speeds=speeds,
        comm_volume=float(i + 1),
        finish_times=np.array([float(i), float(i)]),
        imbalance=0.0,
    )
    return PlanResult(request=request, plan=plan, elapsed_s=0.0)


def check_entry(i: int, result: PlanResult) -> None:
    """Assert a read-back entry is the complete value for key ``i``."""
    assert result.plan.comm_volume == float(i + 1)
    assert result.request.N == 100.0 + i
    assert np.array_equal(
        result.plan.finish_times, np.array([float(i), float(i)])
    )


def hammer(store: SQLitePlanCache, worker: int, rounds: int) -> int:
    """Interleaved get/put over the shared key space; returns get count."""
    gets = 0
    for r in range(rounds):
        i = (worker + r) % KEYS
        found = store.get(stress_key(i))
        gets += 1
        if found is None:
            store.put(stress_key(i), stress_entry(i))
        else:
            check_entry(i, found)
    return gets


def process_worker(args) -> int:
    """Module-level so ProcessPoolExecutor can pickle it."""
    path, worker, rounds = args
    store = SQLitePlanCache(path)
    try:
        return hammer(store, worker, rounds)
    finally:
        store.close()


def verify_final_state(path, total_gets: int) -> None:
    store = SQLitePlanCache(path)
    try:
        # every hammer get counted exactly once, no lost counter
        # updates (read the stats before the verification gets below)
        stats = store.stats
        assert stats.lookups == total_gets, (
            f"{stats.lookups} recorded lookups != {total_gets} issued"
        )
        # no lost writes: every key is present and content-correct
        assert len(store) == KEYS
        for i in range(KEYS):
            found = store.get(stress_key(i))
            assert found is not None, f"key {i} lost"
            check_entry(i, found)
    finally:
        store.close()


def test_threaded_hammering_one_store(tmp_path):
    """THREADS threads share one SQLitePlanCache *instance*."""
    path = tmp_path / "stress.db"
    store = SQLitePlanCache(path)
    with ThreadPoolExecutor(max_workers=THREADS) as pool:
        counts = list(
            pool.map(
                lambda w: hammer(store, w, ROUNDS), range(THREADS)
            )
        )
    store.close()
    verify_final_state(path, sum(counts))


def test_multiprocess_hammering_one_file(tmp_path):
    """4 worker processes open the same cache file independently."""
    path = str(tmp_path / "stress.db")
    SQLitePlanCache(path).close()  # create schema up front
    jobs = [(path, w, ROUNDS) for w in range(4)]
    with ProcessPoolExecutor(max_workers=4) as pool:
        counts = list(pool.map(process_worker, jobs))
    verify_final_state(path, sum(counts))


def test_mixed_threads_and_processes(tmp_path):
    """Threads in this process race worker processes on one file."""
    path = str(tmp_path / "stress.db")
    store = SQLitePlanCache(path)
    with ProcessPoolExecutor(max_workers=2) as procs, ThreadPoolExecutor(
        max_workers=4
    ) as threads:
        proc_counts = procs.map(
            process_worker, [(path, w, ROUNDS) for w in (0, 1)]
        )
        thread_counts = threads.map(
            lambda w: hammer(store, w, ROUNDS), (2, 3, 4, 5)
        )
        total = sum(proc_counts) + sum(thread_counts)
    store.close()
    verify_final_state(path, total)


@pytest.mark.parametrize("backend", ["serial", "threaded", "process"])
def test_session_traffic_on_shared_sqlite(backend, tmp_path):
    """Every execution backend drives one shared durable store safely.

    Two sessions on the same backend share one sqlite cache; the
    second session's identical batch must be all hits, with stats that
    sum consistently — the arrangement the CI backend matrix runs.
    """
    platform = StarPlatform.from_speeds([1.0, 2.0, 4.0, 8.0])
    requests = [
        PlanRequest(platform=platform, N=float(n), strategy=strategy)
        for n in (500, 1000, 1500)
        for strategy in ("hom", "het", "hom/k")
    ]
    path = tmp_path / "shared.db"
    store = SQLitePlanCache(path)
    with PlannerSession(backend=backend, cache=store, jobs=2) as first:
        cold = first.plan_batch(requests)
    with PlannerSession(backend=backend, cache=store, jobs=2) as second:
        warm = second.plan_batch(requests)
    stats = store.stats
    store.close()

    assert not any(r.cached for r in cold)
    assert all(r.cached for r in warm)
    for a, b in zip(cold, warm):
        assert a.comm_volume == b.comm_volume
        assert np.array_equal(a.plan.finish_times, b.plan.finish_times)
    assert stats.lookups == 2 * len(requests)
    assert stats.hits == stats.misses == len(requests)
