"""The registry machinery: typed, namespaced component catalogues.

A :class:`Registry` maps ``(kind, name)`` pairs to factories.  *Kinds*
are the component families the library compares (cost models,
outer-product strategies, partitioners, DLT solvers, simulations,
execution backends); *names* are the short identifiers used in tables,
traces and on the command line ("het", "peri-sum", "threaded", …).

Components self-register at import time with the :func:`register`
decorator; the registry itself never imports them eagerly.  Instead it
keeps an entry-point-style table of *provider modules* per kind
(:func:`register_provider_modules`) and imports those lazily on the
first lookup, so ``import repro.registry`` stays cheap and free of
import cycles — the provider modules import :mod:`repro.registry`, not
the other way round.

This module depends only on the standard library by design.
"""

from __future__ import annotations

import importlib
import inspect
import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, Tuple

#: the built-in component kinds, in presentation order
KINDS: Tuple[str, ...] = (
    "cost_model",
    "strategy",
    "partitioner",
    "dlt_solver",
    "simulation",
    "backend",
    "cache",
    "dispatch",
)

#: the entry-point group third-party distributions register under
ENTRY_POINT_GROUP = "repro.plugins"


class RegistryError(ValueError):
    """Base class for registry failures (a :class:`ValueError`)."""


class UnknownKindError(RegistryError):
    """The requested component kind does not exist."""


class UnknownComponentError(RegistryError, KeyError):
    """No component of the requested kind has the requested name."""

    def __str__(self) -> str:
        # KeyError.__str__ reprs the message (adds quotes); we want the
        # plain ValueError rendering for CLI/error-report legibility.
        return ValueError.__str__(self)


class DuplicateComponentError(RegistryError):
    """A component with this (kind, name) is already registered."""


@dataclass(frozen=True)
class Component:
    """One registered component: factory plus presentation metadata."""

    kind: str
    name: str
    factory: Callable[..., Any]
    #: one-line human description (defaults to the factory's docstring)
    summary: str = ""
    #: dotted location of the factory, for error messages and docs
    origin: str = ""
    #: free-form extras (paper section, aliases, …)
    metadata: Dict[str, Any] = field(default_factory=dict, compare=False)


def _first_doc_line(obj: Any) -> str:
    doc = inspect.getdoc(obj)
    if not doc:
        return ""
    return doc.strip().splitlines()[0].strip()


def _origin_of(factory: Callable[..., Any]) -> str:
    mod = getattr(factory, "__module__", "?")
    qual = getattr(factory, "__qualname__", getattr(factory, "__name__", "?"))
    return f"{mod}.{qual}"


class Registry:
    """A set of named component catalogues, one per kind.

    Registration is import-time and single-threaded by convention, but
    *lazy loading* must be thread-safe: concurrent backends (the
    ``threaded`` execution backend) resolve components from worker
    threads, so the first query of a kind may race.  A re-entrant lock
    serialises provider/entry-point loading; reads after loading are
    pure dict lookups.
    """

    def __init__(self, kinds: Iterable[str] = KINDS) -> None:
        self._components: Dict[str, Dict[str, Component]] = {
            kind: {} for kind in kinds
        }
        self._providers: Dict[str, Tuple[str, ...]] = {}
        self._loaded: set[str] = set()
        self._loading: set[str] = set()
        self._entry_point_groups: Tuple[str, ...] = ()
        self._entry_points_loaded = False
        self._entry_points_loading = False
        #: already-loaded (group, name) entry points — never re-run, so
        #: a broken sibling retried later cannot double-register these
        self._entry_points_done: set[Tuple[str, str]] = set()
        # RLock: a provider that queries the registry while registering
        # re-enters on the same thread (the _loading marker then stops
        # the recursion); other threads block until loading finishes
        self._load_lock = threading.RLock()

    # -- kinds ------------------------------------------------------------

    def kinds(self) -> Tuple[str, ...]:
        """All known component kinds, in declaration order."""
        return tuple(self._components)

    def add_kind(self, kind: str) -> None:
        """Declare a new component kind (idempotent)."""
        self._components.setdefault(kind, {})

    def _check_kind(self, kind: str) -> None:
        if kind not in self._components:
            raise UnknownKindError(
                f"unknown component kind {kind!r}; "
                f"expected one of {self.kinds()}"
            )

    # -- registration -----------------------------------------------------

    def register(
        self,
        kind: str,
        name: str,
        *,
        summary: str | None = None,
        replace: bool = False,
        **metadata: Any,
    ) -> Callable[[Callable[..., Any]], Callable[..., Any]]:
        """Decorator: register the decorated factory as ``(kind, name)``.

        The factory may be a class (instantiated by :meth:`create`) or a
        plain function (called by :meth:`create`).  ``summary`` defaults
        to the first line of the factory's docstring.  Re-registering an
        existing name raises :class:`DuplicateComponentError` unless
        ``replace=True``.
        """
        self._check_kind(kind)

        def decorator(factory: Callable[..., Any]) -> Callable[..., Any]:
            self.add(
                kind,
                name,
                factory,
                summary=summary,
                replace=replace,
                **metadata,
            )
            return factory

        return decorator

    def add(
        self,
        kind: str,
        name: str,
        factory: Callable[..., Any],
        *,
        summary: str | None = None,
        replace: bool = False,
        **metadata: Any,
    ) -> Component:
        """Imperative form of :meth:`register`."""
        self._check_kind(kind)
        existing = self._components[kind].get(name)
        if existing is not None and not replace:
            raise DuplicateComponentError(
                f"{kind} {name!r} is already registered "
                f"(by {existing.origin}); pass replace=True to override"
            )
        component = Component(
            kind=kind,
            name=name,
            factory=factory,
            summary=summary if summary is not None else _first_doc_line(factory),
            origin=_origin_of(factory),
            metadata=dict(metadata),
        )
        self._components[kind][name] = component
        return component

    def unregister(self, kind: str, name: str) -> None:
        """Remove a component (used by tests and plugin teardown)."""
        self._check_kind(kind)
        self._components[kind].pop(name, None)

    # -- lazy provider loading -------------------------------------------

    def register_provider_modules(
        self, kind: str, modules: Iterable[str]
    ) -> None:
        """Declare modules that register ``kind`` components on import.

        This is the entry-point-style indirection: the registry stores
        dotted module paths as strings and imports them only when the
        kind is first queried, so listing what *could* be loaded costs
        nothing and circular imports are impossible.
        """
        self._check_kind(kind)
        current = self._providers.get(kind, ())
        merged = current + tuple(m for m in modules if m not in current)
        self._providers[kind] = merged
        # a provider added after the kind was already queried must still
        # be picked up on the next query
        self._loaded.discard(kind)

    # -- entry-point discovery -------------------------------------------

    def enable_entry_point_discovery(
        self, group: str = ENTRY_POINT_GROUP
    ) -> None:
        """Also discover components via ``importlib.metadata`` entry points.

        Third-party distributions declare, in their packaging metadata::

            [project.entry-points."repro.plugins"]
            my-components = "my_package.repro_components"

        and their components register with no explicit import by the
        user: on the first catalogue query, every entry point in
        ``group`` is loaded.  An entry point may resolve to a *module*
        (whose import-time ``@register`` decorators run against the
        default registry) or to a *callable*, which is invoked with
        this :class:`Registry` so plugins can target non-default
        registries too.
        """
        if group not in self._entry_point_groups:
            self._entry_point_groups = self._entry_point_groups + (group,)
            # plugins discovered later must be picked up by kinds that
            # were already queried
            self._entry_points_loaded = False

    def _load_entry_points(self) -> None:
        """Load every declared entry-point group (once, lazily).

        Each entry point is loaded at most once (tracked by
        ``(group, name)``): if one plugin raises, a later retry skips
        the plugins that already registered and re-raises the broken
        one's real error instead of a spurious
        :class:`DuplicateComponentError`.
        """
        if self._entry_points_loaded or not self._entry_point_groups:
            return
        with self._load_lock:
            if self._entry_points_loaded or self._entry_points_loading:
                return
            import importlib.metadata
            import types

            self._entry_points_loading = True
            try:
                for group in self._entry_point_groups:
                    eps = importlib.metadata.entry_points(group=group)
                    for ep in sorted(eps, key=lambda e: e.name):
                        key = (group, ep.name)
                        if key in self._entry_points_done:
                            continue
                        obj = ep.load()
                        if not isinstance(obj, types.ModuleType) and callable(
                            obj
                        ):
                            obj(self)
                        # module entry points register on import
                        self._entry_points_done.add(key)
            finally:
                self._entry_points_loading = False
            self._entry_points_loaded = True

    def ensure_loaded(self, kind: str) -> None:
        """Import every provider module declared for ``kind`` (once).

        Marked loaded only after every import succeeds — a provider
        that fails to import raises on *every* query rather than
        leaving a silently truncated catalogue.  A separate in-progress
        marker keeps re-entrant queries (a provider querying the
        registry while registering) from recursing.  Entry-point
        discovery (when enabled) runs first, so plugin registrations
        land before the kind's catalogue is first read.
        """
        self._check_kind(kind)
        self._load_entry_points()
        if kind in self._loaded:
            return
        with self._load_lock:
            # re-check under the lock: another thread may have finished
            # the load while we waited; same-thread re-entry (a provider
            # querying the registry mid-registration) sees _loading
            if kind in self._loaded or kind in self._loading:
                return
            self._loading.add(kind)
            try:
                # re-read the provider list each pass: a provider may
                # itself declare further providers for this kind while
                # loading
                imported: set[str] = set()
                while True:
                    todo = [
                        m
                        for m in self._providers.get(kind, ())
                        if m not in imported
                    ]
                    if not todo:
                        break
                    for module in todo:
                        imported.add(module)
                        importlib.import_module(module)
            finally:
                self._loading.discard(kind)
            self._loaded.add(kind)

    # -- lookup -----------------------------------------------------------

    def component(self, kind: str, name: str) -> Component:
        """The full :class:`Component` record for ``(kind, name)``."""
        self.ensure_loaded(kind)
        try:
            return self._components[kind][name]
        except KeyError:
            raise UnknownComponentError(
                f"unknown {kind} {name!r}; "
                f"expected one of {self.available(kind)}"
            ) from None

    def get(self, kind: str, name: str) -> Callable[..., Any]:
        """The registered factory for ``(kind, name)``."""
        return self.component(kind, name).factory

    def create(self, kind: str, name: str, /, *args: Any, **kwargs: Any) -> Any:
        """Instantiate/call the factory for ``(kind, name)``.

        For strategy classes this returns a strategy instance; for
        function components (partitioners, solvers) it simply calls the
        function with the given arguments.
        """
        return self.get(kind, name)(*args, **kwargs)

    def available(self, kind: str) -> Tuple[str, ...]:
        """Names registered under ``kind``, sorted.

        Sorted (rather than registration-ordered) so the result does not
        depend on which provider module happened to be imported first.
        """
        self.ensure_loaded(kind)
        return tuple(sorted(self._components[kind]))

    def describe(self, kind: str) -> Tuple[Component, ...]:
        """All :class:`Component` records of a kind, sorted by name."""
        self.ensure_loaded(kind)
        catalogue = self._components[kind]
        return tuple(catalogue[name] for name in sorted(catalogue))

    def __contains__(self, key: Tuple[str, str]) -> bool:
        kind, name = key
        if kind not in self._components:
            return False
        self.ensure_loaded(kind)
        return name in self._components[kind]
