"""The 3-D computation cube of matrix multiplication (§4.2).

``C = A × B`` for ``N × N`` matrices decomposes into :math:`N^3` basic
operations; operation ``(i, k, j)`` multiplies :math:`a_{i,k}` by
:math:`b_{k,j}` and accumulates into :math:`c_{i,j}`.  The cube model
answers volume questions without touching numerics:

* data size: :math:`2N^2` inputs + :math:`N^2` outputs;
* work: :math:`N^3` — super-linear in the data, which is why §2 applies
  and naive DLT fails;
* a sub-brick ``[i0,i1) × [k0,k1) × [j0,j1)`` needs
  ``(i1-i0)(k1-k0)`` elements of A and ``(k1-k0)(j1-j0)`` of B.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.validation import check_integer


@dataclass(frozen=True)
class Brick:
    """An axis-aligned sub-brick of the computation cube."""

    i0: int
    i1: int
    k0: int
    k1: int
    j0: int
    j1: int

    def __post_init__(self) -> None:
        if not (self.i0 <= self.i1 and self.k0 <= self.k1 and self.j0 <= self.j1):
            raise ValueError(f"degenerate brick bounds: {self}")

    @property
    def work(self) -> int:
        """Number of basic multiply-accumulate operations inside."""
        return (self.i1 - self.i0) * (self.k1 - self.k0) * (self.j1 - self.j0)

    @property
    def a_volume(self) -> int:
        """Distinct A elements the brick reads."""
        return (self.i1 - self.i0) * (self.k1 - self.k0)

    @property
    def b_volume(self) -> int:
        """Distinct B elements the brick reads."""
        return (self.k1 - self.k0) * (self.j1 - self.j0)

    @property
    def c_volume(self) -> int:
        """Distinct C elements the brick contributes to."""
        return (self.i1 - self.i0) * (self.j1 - self.j0)

    @property
    def input_volume(self) -> int:
        return self.a_volume + self.b_volume


@dataclass(frozen=True)
class ComputationCube:
    """The full ``N × N × N`` cube with its global volumes."""

    N: int

    def __post_init__(self) -> None:
        check_integer(self.N, "N", minimum=1)

    @property
    def work(self) -> int:
        """:math:`N^3` basic operations."""
        return self.N**3

    @property
    def input_size(self) -> int:
        """:math:`2N^2` matrix entries (A and B)."""
        return 2 * self.N**2

    @property
    def output_size(self) -> int:
        """:math:`N^2` entries of C."""
        return self.N**2

    @property
    def nonlinearity_alpha(self) -> float:
        """Work = (data)^alpha with data = N²: alpha = 3/2 in *data*
        terms, or 3 in matrix-order terms — super-linear either way, so
        §2's no-free-lunch applies."""
        import numpy as np

        return float(np.log(self.work) / np.log(self.input_size / 2))

    def full_brick(self) -> Brick:
        return Brick(0, self.N, 0, self.N, 0, self.N)

    def column_slab(self, k0: int, k1: int) -> Brick:
        """The slab of steps ``k0 <= k < k1`` — one (blocked) outer-
        product step of the §4.2 algorithm."""
        if not 0 <= k0 <= k1 <= self.N:
            raise ValueError(f"slab [{k0}, {k1}) outside cube of size {self.N}")
        return Brick(0, self.N, k0, k1, 0, self.N)
