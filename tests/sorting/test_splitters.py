"""Tests for repro.sorting.splitters."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sorting.splitters import (
    bucketize,
    choose_splitters,
    heterogeneous_splitter_positions,
    homogeneous_splitter_positions,
)


class TestPositions:
    def test_homogeneous_ranks(self):
        assert homogeneous_splitter_positions(4, 3).tolist() == [3, 6, 9]

    def test_single_bucket_empty(self):
        assert homogeneous_splitter_positions(1, 5).size == 0

    def test_heterogeneous_cumulative(self):
        # speeds (1, 3): boundary at 25% of the sample
        pos = heterogeneous_splitter_positions(np.array([1.0, 3.0]), s=8)
        assert pos.tolist() == [4]  # 0.25 * 16

    def test_heterogeneous_clipped_to_sample(self):
        pos = heterogeneous_splitter_positions(np.array([1e-9, 1.0]), s=4)
        assert pos[0] >= 1

    def test_rejects_bad_speeds(self):
        with pytest.raises(ValueError):
            heterogeneous_splitter_positions(np.array([1.0, -1.0]), s=2)


class TestChooseSplitters:
    def test_count_and_sortedness(self, rng):
        keys = rng.random(10_000)
        spl = choose_splitters(keys, p=8, s=16, rng=rng)
        assert spl.size == 7
        assert np.all(np.diff(spl) >= 0)

    def test_single_processor_no_splitters(self, rng):
        assert choose_splitters(rng.random(100), p=1, s=4, rng=rng).size == 0

    def test_small_input_falls_back_to_replacement(self, rng):
        keys = rng.random(10)
        spl = choose_splitters(keys, p=4, s=16, rng=rng)  # sample 64 > 10
        assert spl.size == 3

    def test_deterministic_given_seed(self):
        keys = np.random.default_rng(0).random(1000)
        a = choose_splitters(keys, p=4, s=8, rng=1)
        b = choose_splitters(keys, p=4, s=8, rng=1)
        assert np.array_equal(a, b)

    def test_speeds_length_checked(self, rng):
        with pytest.raises(ValueError):
            choose_splitters(rng.random(100), p=3, s=4, rng=rng, speeds=[1.0, 2.0])


class TestBucketize:
    def test_no_splitters_single_bucket(self):
        keys = np.array([3.0, 1.0, 2.0])
        buckets = bucketize(keys, np.array([]))
        assert len(buckets) == 1
        assert np.array_equal(buckets[0], keys)

    def test_range_disjointness(self, rng):
        keys = rng.random(5000)
        splitters = np.array([0.25, 0.5, 0.75])
        buckets = bucketize(keys, splitters)
        assert len(buckets) == 4
        assert all(b.size > 0 for b in buckets)
        for i, b in enumerate(buckets[:-1]):
            assert b.max() < splitters[i] + 1e-12
        assert buckets[-1].min() >= splitters[-1]

    def test_conservation(self, rng):
        keys = rng.random(1234)
        buckets = bucketize(keys, np.array([0.3, 0.6]))
        assert sum(b.size for b in buckets) == 1234

    def test_unsorted_splitters_rejected(self):
        with pytest.raises(ValueError, match="sorted"):
            bucketize(np.array([1.0]), np.array([0.5, 0.2]))

    @given(
        data=st.lists(
            st.floats(min_value=0, max_value=1, allow_nan=False),
            min_size=1,
            max_size=200,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_concatenated_sorted_buckets_equal_global_sort(self, data):
        """The §3 correctness core: bucket-then-sort == sort."""
        keys = np.asarray(data)
        splitters = np.array([0.25, 0.5, 0.75])
        buckets = bucketize(keys, splitters)
        merged = np.concatenate([np.sort(b) for b in buckets])
        assert np.array_equal(merged, np.sort(keys))

    def test_duplicates_routed_consistently(self):
        keys = np.array([0.5] * 10)
        buckets = bucketize(keys, np.array([0.5]))
        # side="left": keys equal to the splitter land in the lower bucket
        assert buckets[0].size == 10
        assert buckets[1].size == 0
