"""Tests for repro.matmul.outer_product_algo — Figure 3's accounting."""

import numpy as np
import pytest

from repro.matmul.layouts import BlockCyclicLayout, RectangleLayout
from repro.matmul.outer_product_algo import (
    half_perimeter_volume,
    simulate_outer_product_matmul,
)
from repro.partition.column_based import peri_sum_partition
from repro.partition.naive import grid_partition


class TestSimulation:
    def test_no_reuse_equals_half_perimeter_closed_form(self):
        part = peri_sum_partition([0.2, 0.3, 0.5])
        layout = RectangleLayout(part, n=20)
        run = simulate_outer_product_matmul(layout)
        assert run.total_no_reuse == pytest.approx(half_perimeter_volume(layout))

    def test_reuse_savings_counts_owned_cells_twice(self):
        """Residency saves exactly 2 × N² total: every owned cell's A
        entry and B entry are each skipped once over the N steps."""
        part = grid_partition(4)
        layout = RectangleLayout(part, n=8)
        run = simulate_outer_product_matmul(layout)
        assert run.reuse_savings == pytest.approx(2 * 8 * 8)

    def test_received_positive_for_multi_proc(self):
        layout = RectangleLayout(grid_partition(4), n=8)
        run = simulate_outer_product_matmul(layout)
        assert np.all(run.received > 0)

    def test_single_processor_receives_nothing(self):
        layout = RectangleLayout(grid_partition(1), n=6)
        run = simulate_outer_product_matmul(layout)
        assert run.total_received == 0.0

    def test_volume_proportional_to_perimeter_sum(self):
        """§4.2: comm ∝ N × Σ half-perimeters, so the rectangle layout
        from PERI-SUM beats the 1D strip layout."""
        from repro.partition.naive import strip_partition

        n = 24
        areas = [0.25] * 4
        good = RectangleLayout(peri_sum_partition(areas), n=n)
        bad = RectangleLayout(strip_partition(areas), n=n)
        v_good = simulate_outer_product_matmul(good).total_no_reuse
        v_bad = simulate_outer_product_matmul(bad).total_no_reuse
        assert v_good < v_bad

    def test_block_cyclic_volume_formula(self):
        """q×q grid with 1-wide cyclic blocks: every proc needs n/q rows
        and n/q cols per step → no-reuse volume = n * p * 2n/q = 2n²q."""
        n, q = 12, 3
        layout = BlockCyclicLayout(n=n, p_rows=q, p_cols=q, block=1)
        run = simulate_outer_product_matmul(layout)
        assert run.total_no_reuse == pytest.approx(2 * n * n * q)

    def test_owned_cells_partition_the_matrix(self):
        layout = RectangleLayout(peri_sum_partition([0.4, 0.6]), n=15)
        run = simulate_outer_product_matmul(layout)
        assert run.owned_cells.sum() == 15 * 15
