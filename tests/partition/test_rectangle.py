"""Tests for repro.partition.rectangle."""

import numpy as np
import pytest

from repro.partition.rectangle import Partition, Rectangle, stack_column


class TestRectangle:
    def test_geometry(self):
        r = Rectangle(x=0.1, y=0.2, w=0.3, h=0.4)
        assert r.area == pytest.approx(0.12)
        assert r.half_perimeter == pytest.approx(0.7)
        assert r.x2 == pytest.approx(0.4)
        assert r.y2 == pytest.approx(0.6)

    def test_negative_extent_rejected(self):
        with pytest.raises(ValueError):
            Rectangle(0, 0, -1, 1)

    def test_overlap_detection(self):
        a = Rectangle(0, 0, 0.5, 0.5)
        b = Rectangle(0.25, 0.25, 0.5, 0.5)
        c = Rectangle(0.5, 0.0, 0.5, 0.5)  # shares only an edge
        assert a.overlaps(b)
        assert not a.overlaps(c)

    def test_scaled(self):
        r = Rectangle(0.1, 0.2, 0.3, 0.4, owner=3).scaled(10.0)
        assert (r.x, r.y, r.w, r.h) == (1.0, 2.0, 3.0, 4.0)
        assert r.owner == 3

    def test_scaled_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            Rectangle(0, 0, 1, 1).scaled(0.0)

    def test_row_col_ranges(self):
        r = Rectangle(x=0.25, y=0.5, w=0.5, h=0.5)
        assert r.row_range(4) == (2, 4)
        assert r.col_range(4) == (1, 3)

    def test_contains_point(self):
        r = Rectangle(0, 0, 0.5, 0.5)
        assert r.contains_point(0.25, 0.25)
        assert not r.contains_point(0.75, 0.25)


class TestStackColumn:
    def test_fills_column_exactly(self):
        rects = stack_column(0.2, 0.3, [0.1, 0.2], [0, 1])
        assert rects[0].y == 0.0
        assert rects[-1].y2 == pytest.approx(1.0)
        assert all(r.x == 0.2 and r.w == 0.3 for r in rects)

    def test_areas_preserved(self):
        rects = stack_column(0.0, 0.3, [0.1, 0.2], [5, 7])
        assert rects[0].area == pytest.approx(0.1)
        assert rects[1].area == pytest.approx(0.2)
        assert [r.owner for r in rects] == [5, 7]

    def test_zero_width_rejected(self):
        with pytest.raises(ValueError):
            stack_column(0.0, 0.0, [0.1], [0])

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            stack_column(0.0, 0.5, [0.1], [0, 1])


class TestPartition:
    def _two_halves(self):
        return Partition(
            (
                Rectangle(0.0, 0.0, 0.5, 1.0, owner=0),
                Rectangle(0.5, 0.0, 0.5, 1.0, owner=1),
            )
        )

    def test_objectives(self):
        part = self._two_halves()
        assert part.sum_half_perimeters == pytest.approx(3.0)
        assert part.max_half_perimeter == pytest.approx(1.5)

    def test_validate_accepts_exact(self):
        self._two_halves().validate(expected_areas=[0.5, 0.5])

    def test_validate_rejects_overlap(self):
        bad = Partition(
            (
                Rectangle(0.0, 0.0, 0.7, 1.0, owner=0),
                Rectangle(0.5, 0.0, 0.5, 1.0, owner=1),
            )
        )
        with pytest.raises(ValueError, match="overlap"):
            bad.validate()

    def test_validate_rejects_gap(self):
        bad = Partition((Rectangle(0.0, 0.0, 0.5, 1.0, owner=0),))
        with pytest.raises(ValueError, match="covers area"):
            bad.validate()

    def test_validate_rejects_out_of_domain(self):
        bad = Partition((Rectangle(0.0, 0.0, 1.5, 1.0, owner=0),))
        with pytest.raises(ValueError, match="exceeds"):
            bad.validate()

    def test_validate_rejects_wrong_areas(self):
        with pytest.raises(ValueError, match="prescription"):
            self._two_halves().validate(expected_areas=[0.3, 0.7])

    def test_by_owner(self):
        owners = self._two_halves().by_owner()
        assert owners[0].x == 0.0 and owners[1].x == 0.5

    def test_by_owner_duplicate_rejected(self):
        dup = Partition(
            (
                Rectangle(0.0, 0.0, 0.5, 1.0, owner=0),
                Rectangle(0.5, 0.0, 0.5, 1.0, owner=0),
            )
        )
        with pytest.raises(ValueError, match="duplicate"):
            dup.by_owner()

    def test_scaled_partition(self):
        scaled = self._two_halves().scaled(100.0)
        assert scaled.side == 100.0
        assert scaled.sum_half_perimeters == pytest.approx(300.0)

    def test_container_protocol(self):
        part = self._two_halves()
        assert len(part) == 2
        assert part[0].owner == 0
        assert [r.owner for r in part] == [0, 1]
