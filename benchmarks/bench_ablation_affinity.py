"""Ablation: the paper's proposed affinity-aware demand-driven scheduler.

The conclusion claims that "favoring among all available tasks those
that share blocks with data already stored on a slave processor ...
would improve the results" — without changing the MapReduce programming
model.  This bench measures the recovered communication volume.
"""

import numpy as np
import pytest

from repro.platform.generators import make_speeds
from repro.platform.star import StarPlatform
from repro.simulate.affinity import affinity_savings, run_grid_demand_driven
from repro.util.tables import format_table


def test_affinity_scheduler_savings(benchmark):
    def run():
        rng = np.random.default_rng(0)
        rows = []
        for p, grid in ((4, 8), (8, 16), (16, 32)):
            speeds = make_speeds("uniform", p, rng)
            plat = StarPlatform.from_speeds(speeds)
            out = affinity_savings(plat, grid=grid)
            rows.append(
                [
                    p,
                    grid * grid,
                    out["plain"].total_shipped,
                    out["affinity"].total_shipped,
                    100 * out["saved_fraction"],
                ]
            )
        return rows

    rows = benchmark.pedantic(run, iterations=1, rounds=1)
    print()
    print(
        format_table(
            ["p", "#chunks", "plain shipped", "affinity shipped", "saved %"],
            rows,
            title=(
                "Ablation: demand-driven scheduling with the paper's "
                "proposed data-affinity rule (unit-side blocks):"
            ),
        )
    )
    for p, chunks, plain, aff, saved_pct in rows:
        assert aff <= plain + 1e-9
    # the proposal pays off visibly once several workers interleave
    assert rows[-1][-1] > 5.0


def test_cache_size_sweep(benchmark):
    """Bounded worker memory: savings degrade gracefully with LRU size."""

    def run():
        plat = StarPlatform.from_speeds([1.0, 2.0, 4.0, 8.0])
        rows = []
        for cap in (0, 2, 4, 8, 16, None):
            res = run_grid_demand_driven(
                plat, grid=16, policy="affinity", cache_capacity=cap
            )
            rows.append(
                ["unbounded" if cap is None else cap, res.total_shipped]
            )
        return rows

    rows = benchmark.pedantic(run, iterations=1, rounds=1)
    print()
    print(
        format_table(
            ["cache (segments/worker)", "shipped volume"],
            rows,
            title="Affinity scheduling under bounded LRU caches (16x16 grid):",
        )
    )
    vols = [r[1] for r in rows]
    assert vols == sorted(vols, reverse=True)  # monotone improvement
    assert vols[0] == pytest.approx(2.0 * 16 * 16)  # zero cache = no reuse


def test_affinity_preserves_load_balance(benchmark):
    """Affinity must not trade balance for locality: identical
    makespans on identical-cost chunks."""
    plat = StarPlatform.from_speeds([1.0, 2.0, 4.0, 8.0])

    def run():
        a = run_grid_demand_driven(plat, grid=20, policy="plain")
        b = run_grid_demand_driven(plat, grid=20, policy="affinity")
        return a, b

    a, b = benchmark.pedantic(run, iterations=1, rounds=1)
    assert b.makespan == pytest.approx(a.makespan)
    assert b.total_shipped < a.total_shipped
