"""Benchmark regenerating the §4.1.3 ρ table: experiment E6.

Half-slow/half-fast(k) platforms: measured
:math:`\\rho = Comm_{hom}/Comm_{het}` versus the analytic bounds
:math:`(1+k)/(1+\\sqrt k)` and :math:`\\sqrt k - 1`.
"""

import pytest

from repro.experiments.rho import run_rho_experiment


def test_rho_half_fast_platforms(benchmark):
    result = benchmark.pedantic(
        run_rho_experiment,
        kwargs={"ks": (1, 2, 4, 9, 16, 25, 64), "p": 40, "N": 10_000.0},
        iterations=1,
        rounds=1,
    )
    print()
    print(result.render())
    rows = {r.k: r for r in result.rows}
    # the paper's chain: measured >= sqrt(k)-1 for every k
    for k, row in rows.items():
        assert row.measured_rho >= row.bound_simple - 1e-9, k
    # rho grows without bound in k
    assert rows[64].measured_rho > rows[4].measured_rho > rows[1].measured_rho
    # homogeneous k=1: both strategies coincide
    assert rows[1].measured_rho == pytest.approx(1.0, abs=0.05)
