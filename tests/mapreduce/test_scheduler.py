"""Tests for repro.mapreduce.scheduler."""

import numpy as np
import pytest

from repro.mapreduce.scheduler import schedule_map_tasks
from repro.platform.star import StarPlatform


class TestScheduleMapTasks:
    def test_counts_sum_to_tasks(self, heterogeneous_platform):
        sched = schedule_map_tasks(heterogeneous_platform, np.ones(50))
        assert sched.counts.sum() == 50

    def test_fast_workers_take_more(self):
        plat = StarPlatform.from_speeds([1.0, 5.0])
        sched = schedule_map_tasks(plat, np.ones(60))
        assert sched.counts[1] == 50

    def test_default_data_equals_work(self):
        plat = StarPlatform.homogeneous(2)
        sched = schedule_map_tasks(plat, [2.0, 3.0])
        assert sched.total_data == pytest.approx(5.0)

    def test_explicit_data_volumes(self):
        plat = StarPlatform.homogeneous(2)
        sched = schedule_map_tasks(plat, [1.0, 1.0], task_datas=[10.0, 20.0])
        assert sched.total_data == pytest.approx(30.0)

    def test_data_length_checked(self):
        plat = StarPlatform.homogeneous(2)
        with pytest.raises(ValueError):
            schedule_map_tasks(plat, [1.0], task_datas=[1.0, 2.0])

    def test_straggler_gap(self):
        plat = StarPlatform.homogeneous(2)
        sched = schedule_map_tasks(plat, [4.0, 1.0])
        assert sched.straggler_gap == pytest.approx(3.0)
        assert sched.makespan == pytest.approx(4.0)

    def test_many_small_tasks_balance_well(self):
        """The Hadoop premise: many tasks → good balance even when
        heterogeneous (this is what Comm_hom/k exploits, at a comm cost)."""
        plat = StarPlatform.from_speeds([1.0, 3.7, 9.2])
        sched = schedule_map_tasks(plat, np.ones(5000))
        assert sched.imbalance < 0.01
