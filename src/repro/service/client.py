"""Clients for the plan server: remote backend + network plan store.

Two registered components let any existing planning path offload to a
:class:`~repro.service.server.PlanServer` by switching one spec string:

* :class:`RemoteBackend` (kind ``backend``, spec ``remote:HOST:PORT``)
  — implements the ordinary backend contract by shipping its items
  (picklable :class:`~repro.core.pipeline.PlanRequest`\\ s and
  :class:`~repro.core.vectorize.VectorGroup`\\ s, exactly what sessions
  hand every backend) to the server's ``/plan_batch`` and returning the
  planned results in order.  ``PlannerSession(backend="remote:...")``,
  ``run_figure4(backend="remote:...")`` and ``repro figure4 --backend
  remote:...`` therefore offload whole sweeps with no other change.
* :class:`HTTPPlanCache` (kind ``cache``, spec ``http://HOST:PORT``) —
  a :class:`~repro.core.cache.PlanStore` whose entries live in the
  server's store, one ``/cache/get`` / ``/cache/put`` per lookup, so
  many client *processes* share one warm cache.  Compose it with
  :class:`~repro.core.cache.TieredPlanCache` for a local memory front
  (``cache="tiered:http://HOST:PORT"``): hot keys are answered from
  RAM, the shared tier fills and serves everything else.

Both ride :class:`ServiceClient`, a stdlib ``urllib`` HTTP client with
a per-call timeout and bounded retry.  Two failure families retry, on
different clocks, and nothing else does:

* *transport* failures (connection refused, resets, timeouts) — the
  request may never have reached a healthy server, and planning is
  pure, so re-sending can change nothing but latency.  Linear backoff
  (``retry_wait * attempt``); exhausting the budget raises
  :class:`PlanServiceUnavailable`, the signal cluster coordinators
  reroute on.
* ``429 Too Many Requests`` — the server's admission gate refused the
  request *before* doing any work (see
  :class:`~repro.service.metrics.AdmissionGate`).  The client honours
  the server's ``Retry-After`` hint, capped by ``retry_after_cap`` so
  a hostile or confused header cannot stall a sweep, within the same
  bounded attempt budget.

Every other protocol-level error never retries: the server's 4xx/5xx
JSON error bodies and wire version mismatches surface as
:class:`PlanServiceError` / :class:`~repro.service.wire.WireError`
immediately, carrying the server's own message (and the HTTP status in
``PlanServiceError.code``).
"""

from __future__ import annotations

import datetime
import email.utils
import itertools
import json
import os
import socket
import time
import urllib.error
import urllib.request
from typing import Any, Callable, Hashable, Iterable, List, Optional, TypeVar

from repro.core.backends import Backend
from repro.core.cache import BasePlanStore, CacheStats
from repro.core.pipeline import PlanRequest, PlanResult, plan_request
from repro.core.vectorize import plan_work_item
from repro.obs import TRACE_HEADER, SpanRecorder, TraceContext, start_trace
from repro.registry import register
from repro.service import wire

T = TypeVar("T")
R = TypeVar("R")

#: transport errors worth retrying: the request may never have reached
#: a healthy server (refused/reset/timeout); planning is pure, so a
#: duplicate delivery is harmless
_RETRYABLE = (urllib.error.URLError, ConnectionError, socket.timeout, TimeoutError)


class PlanServiceError(RuntimeError):
    """Talking to the plan server failed (after any retries).

    When the failure is an HTTP-level refusal, :attr:`code` carries the
    status the server answered with (``None`` for transport failures),
    so callers can distinguish e.g. a 400 client mistake from a 503.
    """

    def __init__(self, message: str, *, code: int | None = None) -> None:
        super().__init__(message)
        self.code = code


class PlanServiceUnavailable(PlanServiceError):
    """The server could not be *reached* at all (transport exhausted).

    Distinct from :class:`PlanServiceError` answers: here no response
    arrived, so the server may be dead — the cluster coordinator treats
    exactly this as "worker down, reroute the batch", while an answered
    error (however unhappy) proves the worker is alive.
    """


def service_url(address: str) -> str:
    """Normalise an address/spec fragment into a base URL.

    Accepts ``HOST:PORT``, ``http://HOST:PORT``, and the ``//HOST:PORT``
    form a ``cache`` spec leaves after ``http:`` is split off.
    """
    address = address.strip().rstrip("/")
    if not address:
        raise ValueError("empty plan-server address")
    if address.startswith("//"):
        address = address[2:]
    if not address.startswith(("http://", "https://")):
        address = f"http://{address}"
    return address


class ServiceClient:
    """Thin HTTP client every service-side component shares.

    ``timeout`` bounds each attempt; ``retries`` extra attempts are made
    on transport errors, sleeping ``retry_wait * attempt`` between them
    (linear backoff keeps worst-case latency predictable), and on 429
    admission refusals, sleeping the server's ``Retry-After`` hint
    capped by ``retry_after_cap`` (the server knows its queue, so its
    clock beats the client's — but only up to the cap).

    ``wire_profile`` picks the envelope format requests are packed in:
    ``"binary-v2"`` (typed, zero-copy), ``"pickle-v1"`` (legacy), or
    ``"auto"`` (default) to negotiate the best profile both ends speak.
    ``None`` reads the ``REPRO_WIRE`` environment variable, falling
    back to ``auto`` — so CLI sweeps pick a profile without new flags.
    The handshake is lazy: the first envelope call GETs ``/healthz``
    and checks the server's advertised ``wire_profiles`` (a server
    predating profiles counts as pickle-v1 only); asking for a profile
    the server refuses — e.g. a pickle-v1 client against a ``--wire
    safe`` server — raises :class:`PlanServiceError` with the server's
    accepted list, *before* any payload is shipped.

    Tracing: every envelope call accepts ``trace=TraceContext`` to
    propagate (or force-sample) a distributed trace; ``trace_sample=N``
    makes the client originate a fresh sampled trace on every Nth call
    instead.  With a ``span_recorder``, the client records the root
    ``client <path>`` span — the client-observed latency all
    server-side spans nest inside.  Untraced calls carry no header and
    pay nothing.
    """

    def __init__(
        self,
        address: str,
        *,
        timeout: float = 30.0,
        retries: int = 2,
        retry_wait: float = 0.2,
        retry_after_cap: float = 5.0,
        wire_profile: str | None = None,
        trace_sample: int | None = None,
        span_recorder: SpanRecorder | None = None,
    ) -> None:
        self.base_url = service_url(address)
        self.timeout = float(timeout)
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        self.retries = int(retries)
        self.retry_wait = float(retry_wait)
        if retry_after_cap <= 0:
            raise ValueError(
                f"retry_after_cap must be > 0, got {retry_after_cap}"
            )
        self.retry_after_cap = float(retry_after_cap)
        if wire_profile is None:
            wire_profile = os.environ.get("REPRO_WIRE", "auto")
        if wire_profile != "auto" and wire_profile not in wire.PROFILES:
            raise ValueError(
                f"unknown wire profile {wire_profile!r}; pick 'auto' or "
                f"one of {wire.PROFILES}"
            )
        self.requested_profile = wire_profile
        self._active_profile: str | None = None
        # -- tracing: callers may pass an explicit TraceContext per call
        # ("always when the caller asks"); otherwise trace_sample=N
        # originates a sampled context on every Nth envelope call.  The
        # counter is a shared iterator: next() is atomic, so concurrent
        # callers never double-sample a slot.
        if trace_sample is not None and trace_sample < 1:
            raise ValueError(f"trace_sample must be >= 1, got {trace_sample}")
        self.trace_sample = trace_sample
        #: when set, the client records a root span around each traced
        #: call (the outermost timing every server-side span nests in)
        self.span_recorder = span_recorder
        self._op_counter = itertools.count()

    # -- wire-profile handshake ------------------------------------------

    def wire_profile(self) -> str:
        """The profile envelopes travel in (negotiated on first use)."""
        if self._active_profile is None:
            advertised = self._server_profiles()
            if self.requested_profile == "auto":
                for profile in wire.PROFILES:  # preference order
                    if profile in advertised:
                        self._active_profile = profile
                        break
                else:
                    raise PlanServiceError(
                        f"no common wire profile with {self.base_url}: "
                        f"server speaks {advertised}, this client speaks "
                        f"{list(wire.PROFILES)}"
                    )
            elif self.requested_profile not in advertised:
                raise PlanServiceError(
                    f"plan server at {self.base_url} does not accept wire "
                    f"profile {self.requested_profile!r} (it accepts: "
                    f"{', '.join(advertised)}) — likely a --wire safe "
                    "server refusing pickle; switch this client to "
                    f"{wire.PROFILE_BINARY!r} or REPRO_WIRE=binary-v2"
                )
            else:
                self._active_profile = self.requested_profile
        return self._active_profile

    def _server_profiles(self) -> List[str]:
        health = self.healthz()
        advertised = health.get("wire_profiles")
        if advertised is None:
            # a pre-profile server: it speaks pickle-v1 and nothing else
            return [wire.PROFILE_PICKLE]
        return [str(p) for p in advertised]

    # -- transport -------------------------------------------------------

    def _request(
        self,
        path: str,
        data: bytes | None,
        content_type: str | None,
        profile: str | None = None,
        trace: Optional[TraceContext] = None,
    ) -> bytes:
        url = f"{self.base_url}{path}"
        headers = {wire.VERSION_HEADER: str(wire.WIRE_VERSION)}
        if profile:
            headers[wire.PROFILE_HEADER] = profile
        if content_type:
            headers["Content-Type"] = content_type
        if trace is not None:
            headers[TRACE_HEADER] = trace.to_header()
        last_error: Exception | None = None
        for attempt in range(self.retries + 1):
            request = urllib.request.Request(url, data=data, headers=headers)
            try:
                with urllib.request.urlopen(request, timeout=self.timeout) as resp:
                    return resp.read()
            except urllib.error.HTTPError as exc:
                # the server answered.  429 means "full, come back" —
                # wait the server's own hint (bounded) and retry within
                # the same attempt budget; every other status is a
                # protocol error, never retried
                message = _error_message(exc)
                if exc.code == 429 and attempt < self.retries:
                    time.sleep(self._retry_after_delay(exc))
                    last_error = exc
                    continue
                raise PlanServiceError(
                    f"{url} -> HTTP {exc.code}: {message}", code=exc.code
                ) from None
            except _RETRYABLE as exc:
                last_error = exc
                if attempt < self.retries:
                    time.sleep(self.retry_wait * (attempt + 1))
        # only transport errors fall through: the final attempt's
        # HTTPError (429 included) raises inline above
        raise PlanServiceUnavailable(
            f"cannot reach plan server at {self.base_url} "
            f"after {self.retries + 1} attempt(s): {last_error}"
        ) from None

    def _retry_after_delay(self, exc: urllib.error.HTTPError) -> float:
        """The bounded wait a 429's ``Retry-After`` header asks for.

        RFC 7231 allows both forms — ``Retry-After: 2`` (delay
        seconds) and ``Retry-After: Fri, 08 Aug 2026 12:00:03 GMT``
        (an HTTP-date) — and both are honoured; a date in the past
        means "now".  Missing/garbage headers fall back to
        ``retry_wait``; anything is clamped into
        ``(0, retry_after_cap]`` so a server cannot make a client
        sleep forever (or not at all, which would spin).
        """
        header = (exc.headers.get("Retry-After") or "").strip()
        delay = _parse_retry_after(header)
        if delay is None:
            delay = self.retry_wait
        return min(max(delay, 0.01), self.retry_after_cap)

    def _trace_for(self, trace: Optional[TraceContext]) -> Optional[TraceContext]:
        """The context one envelope call travels with, if any.

        An explicit context wins (the caller is propagating or forced
        a sample); otherwise ``trace_sample=N`` originates a fresh
        sampled trace on every Nth call and leaves the rest untraced —
        no header at all, so the fast path stays byte-identical.
        """
        if trace is not None:
            return trace
        if self.trace_sample is None:
            return None
        if next(self._op_counter) % self.trace_sample != 0:
            return None
        return start_trace()

    def post(
        self, path: str, payload: Any, *, trace: Optional[TraceContext] = None
    ) -> Any:
        """POST an envelope, return the response envelope's payload.

        Packed in the negotiated wire profile; the server answers in
        the same profile (decoded by magic line, so a response can
        never be mis-read as the wrong format).  ``trace`` propagates
        an existing trace context; without one, ``trace_sample`` may
        originate a fresh sampled trace for this call.
        """
        ctx = self._trace_for(trace)
        profile = self.wire_profile()
        data = wire.pack_as(payload, profile)
        if ctx is not None and ctx.sampled and self.span_recorder is not None:
            # the client-observed latency every server-side span must
            # nest inside: pack time is excluded (it happened above),
            # retries and backoff are included (the caller waits them)
            with self.span_recorder.span(
                ctx.trace_id,
                f"client {path}",
                span_id=ctx.span_id,
                parent_id=None,
                service="client",
                url=self.base_url,
            ):
                body = self._request(
                    path, data, wire.CONTENT_TYPE, profile, trace=ctx
                )
        else:
            body = self._request(
                path, data, wire.CONTENT_TYPE, profile, trace=ctx
            )
        return wire.unpack_any(body)

    def get_json(self, path: str) -> dict:
        """GET a JSON control endpoint (``/healthz``, ``/cache/stats``)."""
        return json.loads(self._request(path, None, None).decode("utf-8"))

    # -- service calls ---------------------------------------------------

    def plan(
        self,
        request: PlanRequest,
        *,
        trace: Optional[TraceContext] = None,
    ) -> PlanResult:
        return self.post("/plan", request, trace=trace)

    def plan_items(
        self,
        items: List[Any],
        *,
        trace: Optional[TraceContext] = None,
    ) -> List[Any]:
        return self.post("/plan_batch", list(items), trace=trace)

    def cache_get(
        self, key: Hashable, *, trace: Optional[TraceContext] = None
    ) -> PlanResult | None:
        return self.post("/cache/get", key, trace=trace)

    def cache_put(self, key: Hashable, result: PlanResult) -> None:
        profile = self.wire_profile()
        self._request(
            "/cache/put",
            wire.pack_as((key, result), profile),
            wire.CONTENT_TYPE,
            profile,
        )

    def cache_clear(self) -> None:
        self._request(
            "/cache/clear", b"", wire.CONTENT_TYPE, self.wire_profile()
        )

    def cache_stats(self) -> dict:
        return self.get_json("/cache/stats")

    def healthz(self) -> dict:
        return self.get_json("/healthz")


def _parse_retry_after(header: str) -> float | None:
    """Seconds a ``Retry-After`` header asks for, or ``None`` on garbage.

    Accepts both RFC 7231 forms: a non-negative decimal delay and an
    HTTP-date (``email.utils`` parses all three date formats the RFC
    grandfathers in).  A date already in the past yields ``0.0`` —
    the server said "now", not "never".
    """
    if not header:
        return None
    try:
        return float(header)
    except ValueError:
        pass
    try:
        when = email.utils.parsedate_to_datetime(header)
    except (TypeError, ValueError):
        return None
    if when is None:
        return None
    if when.tzinfo is None:
        # RFC 5322 obsolete zone names parse as naive datetimes; the
        # RFC says to treat them as UTC
        when = when.replace(tzinfo=datetime.timezone.utc)
    now = datetime.datetime.now(datetime.timezone.utc)
    return max(0.0, (when - now).total_seconds())


def _error_message(exc: urllib.error.HTTPError) -> str:
    """The server's JSON ``error`` field, or the raw body on surprise."""
    try:
        body = exc.read().decode("utf-8", errors="replace")
        return json.loads(body).get("error", body.strip())
    except Exception:
        return exc.reason if isinstance(exc.reason, str) else str(exc.reason)


#: the planners sessions route through backends; a remote backend ships
#: the *items* instead and lets the server apply the equivalent planner
_SHIPPABLE_PLANNERS: tuple[Callable[..., Any], ...] = (
    plan_request,
    plan_work_item,
)


@register(
    "backend",
    "remote",
    summary="Ship planning items to a repro plan server (remote:HOST:PORT)",
)
class RemoteBackend(Backend):
    """Dispatch planning work to a :class:`PlanServer` over HTTP.

    The backend contract is ``map(fn, items)``; a remote backend cannot
    ship arbitrary ``fn``, so it accepts exactly the planners sessions
    use (:func:`~repro.core.pipeline.plan_request` and the vectorised
    :func:`~repro.core.vectorize.plan_work_item`) and posts the *items*
    to ``/plan_batch`` — the server plans them through its own session,
    which is what makes its store a shared warm cache.  Any other ``fn``
    raises ``TypeError`` rather than silently planning the wrong thing.

    ``jobs`` is accepted for interface parity but concurrency lives
    server-side (the server's backend fans each batch out).
    """

    name = "remote"

    def __init__(
        self,
        address: str,
        jobs: int | None = None,
        *,
        timeout: float = 60.0,
        retries: int = 2,
        retry_wait: float = 0.2,
        wire_profile: str | None = None,
    ) -> None:
        super().__init__(jobs)
        self.client = ServiceClient(
            address,
            timeout=timeout,
            retries=retries,
            retry_wait=retry_wait,
            wire_profile=wire_profile,
        )

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> List[R]:
        items = list(items)
        if not items:
            return []
        if fn not in _SHIPPABLE_PLANNERS:
            raise TypeError(
                "RemoteBackend can only ship the session planners "
                "(plan_request / plan_work_item); got "
                f"{getattr(fn, '__name__', fn)!r}"
            )
        return self.client.plan_items(items)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<RemoteBackend {self.client.base_url}>"


@register(
    "cache",
    "http",
    summary="Client for a plan server's shared store (http://HOST:PORT)",
)
class HTTPPlanCache(BasePlanStore):
    """A :class:`~repro.core.cache.PlanStore` living on a plan server.

    ``get`` / ``put`` / ``clear`` are one HTTP call each against the
    server's store, so every client process pointing the same URL reads
    and warms one cache.  ``stats`` is the *server's* view — counters
    aggregate every client's traffic, which is the point of a shared
    tier (per-sweep hit deltas in one client are approximate whenever
    other clients are planning concurrently).

    A lookup round-trip costs an HTTP exchange; for hot working sets
    put a local LRU in front::

        PlannerSession(cache="tiered:http://HOST:PORT")
    """

    def __init__(
        self,
        url: str,
        *,
        timeout: float = 30.0,
        retries: int = 2,
        retry_wait: float = 0.2,
        wire_profile: str | None = None,
    ) -> None:
        self.client = ServiceClient(
            url,
            timeout=timeout,
            retries=retries,
            retry_wait=retry_wait,
            wire_profile=wire_profile,
        )

    @property
    def url(self) -> str:
        return self.client.base_url

    def get(self, key: Hashable) -> PlanResult | None:
        return self.client.cache_get(key)

    def put(self, key: Hashable, result: PlanResult) -> None:
        self.client.cache_put(key, result)

    def clear(self) -> None:
        self.client.cache_clear()

    def __len__(self) -> int:
        from repro.service.server import stats_from_payload

        stats = stats_from_payload(self.client.cache_stats())
        # a cacheless server has no entries to count; stats itself
        # raises instead, because reading counters there is a misuse
        return stats.entries if stats is not None else 0

    @property
    def stats(self) -> CacheStats:
        from repro.service.server import stats_from_payload

        stats = stats_from_payload(self.client.cache_stats())
        if stats is None:
            raise PlanServiceError(
                f"plan server at {self.url} runs without a cache"
            )
        return stats

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<HTTPPlanCache {self.url}>"


@register(
    "cache",
    "https",
    summary="TLS variant of the http plan-store client (https://HOST:PORT)",
)
def https_plan_cache(url: str, **kwargs: Any) -> HTTPPlanCache:
    """Rebuild the scheme a ``https://...`` cache spec split off.

    ``cache_from_spec`` partitions a spec at its first colon, so the
    factory receives ``//HOST:PORT`` and must restore the right scheme
    itself (:class:`HTTPPlanCache` would default to plain http).
    """
    if url.startswith("//"):
        url = f"https:{url}"
    return HTTPPlanCache(url, **kwargs)
