"""LocalCluster: subprocess workers, state file, kill/teardown."""

import json
import signal
import time

import numpy as np
import pytest

from repro.cluster.lifecycle import (
    LocalCluster,
    cluster_status,
    read_state,
    remove_state,
    write_state,
)
from repro.core.pipeline import PlanRequest
from repro.core.session import PlannerSession
from repro.platform.star import StarPlatform


class TestWorkerCommand:
    """Spawn-free unit tests of the command/state plumbing."""

    def test_cache_spec_templating(self):
        cluster = LocalCluster(n=2, cache="sqlite:/tmp/plans-{i}.db")
        command = cluster._worker_command(1)
        assert "sqlite:/tmp/plans-1.db" in command

    def test_no_cache_flag(self):
        cluster = LocalCluster(n=1, cache=None)
        assert "--no-cache" in cluster._worker_command(0)
        assert "--cache" not in cluster._worker_command(0)

    def test_worker_max_inflight_forwarded(self):
        cluster = LocalCluster(n=1, worker_max_inflight=4)
        command = cluster._worker_command(0)
        assert command[command.index("--max-inflight") + 1] == "4"

    def test_workers_always_bind_ephemeral_ports(self):
        cluster = LocalCluster(n=1, port=8650)
        command = cluster._worker_command(0)
        assert command[command.index("--port") + 1] == "0"

    def test_needs_at_least_one_worker(self):
        with pytest.raises(ValueError):
            LocalCluster(n=0)

    def test_state_file_roundtrip(self, tmp_path):
        path = str(tmp_path / "state.json")
        state = {"coordinator": {"url": "http://x", "pid": 1}, "workers": []}
        write_state(path, state)
        assert read_state(path) == state
        remove_state(path)
        with pytest.raises(FileNotFoundError):
            read_state(path)
        remove_state(path)  # second removal is a no-op


class TestLocalCluster:
    def test_cluster_round_trip_and_kill(self, tmp_path):
        state_path = str(tmp_path / "cluster.json")
        platform = StarPlatform.from_speeds([1.0, 2.0, 4.0, 8.0])
        requests = [
            PlanRequest(platform=platform, N=100.0 + i, strategy="het")
            for i in range(8)
        ]
        with PlannerSession(cache=False) as local:
            expected = local.plan_batch(requests)
        with LocalCluster(
            n=2, state_path=state_path, heartbeat_interval=0.2
        ) as cluster:
            # state file records the running topology
            state = read_state(state_path)
            assert state["coordinator"]["url"] == cluster.url
            assert len(state["workers"]) == 2
            assert all(w["url"] for w in state["workers"])

            address = (
                f"{cluster.coordinator.host}:{cluster.coordinator.port}"
            )
            with PlannerSession(
                backend=f"remote:{address}", cache=False
            ) as remote:
                actual = remote.plan_batch(requests)
                for a, b in zip(actual, expected):
                    np.testing.assert_allclose(
                        a.plan.finish_times,
                        b.plan.finish_times,
                        rtol=1e-12,
                    )

                # SIGKILL one replica; planning must keep working
                cluster.kill_worker(0, signal.SIGKILL)
                actual = remote.plan_batch(requests)
                for a, b in zip(actual, expected):
                    np.testing.assert_allclose(
                        a.plan.finish_times,
                        b.plan.finish_times,
                        rtol=1e-12,
                    )

            # status reflects the death once heartbeats notice
            deadline = time.time() + 10
            alive = None
            while time.time() < deadline:
                alive = cluster_status(cluster.url)["pool"]["alive"]
                if alive == 1:
                    break
                time.sleep(0.1)
            assert alive == 1
        # teardown removed the state file and reaped the workers
        with pytest.raises(FileNotFoundError):
            read_state(state_path)
        assert all(not w.alive() for w in cluster.workers)

    def test_startup_failure_reports_worker_output(self, tmp_path):
        cluster = LocalCluster(
            n=1,
            backend="no-such-backend",
            state_path=str(tmp_path / "broken.json"),
            startup_timeout=20.0,
        )
        with pytest.raises(RuntimeError, match="did not report"):
            cluster.start()
        cluster.close()
        with pytest.raises(FileNotFoundError):
            read_state(str(tmp_path / "broken.json"))
