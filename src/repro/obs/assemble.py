"""Trace assembly: from piles of span files to explained latency.

Each process writes its own JSONL span file (``repro serve --trace``,
``repro cluster up --trace``), so one traced operation is scattered
across client, coordinator, and worker files.  This module joins them
back together:

* :func:`read_spans` parses any number of JSONL files (strictly — a
  truncated line is an error, not a silent gap);
* :func:`assemble_traces` groups spans by ``trace_id`` into
  :class:`Trace` trees, chaining across process boundaries through the
  ``parent_id`` each hop forwarded in its ``X-Repro-Trace`` header;
* :func:`stage_stats` aggregates p50/p99 per stage name across traces;
* :meth:`Trace.critical_path` walks the longest-duration child chain
  from the root — the spans that actually bound the latency;
* :meth:`Trace.accounted_fraction` measures how much of the root
  span's wall time its descendants explain (merged intervals, so
  parallel worker hops are not double-counted).  This is the honesty
  metric: a breakdown that accounts for 40% of the latency is mostly
  guessing.

Quantiles use the same upper-bound rule as
:func:`repro.service.metrics._quantile_s`: the reported pN is the
smallest observed value ≥ N% of samples, never an interpolation below
one.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.obs.recorder import Span, parse_span_line


def read_spans(paths: Iterable[str]) -> List[Span]:
    """Every span in the given JSONL files, in file-then-line order.

    Blank lines are skipped (a flush boundary is not data); any other
    unparsable line raises ``ValueError`` naming the file and line
    number, because a trace silently missing stages would *mis*explain
    latency rather than fail to.
    """
    spans: List[Span] = []
    for path in paths:
        with open(path, "r", encoding="utf-8") as stream:
            for lineno, line in enumerate(stream, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    spans.append(parse_span_line(line))
                except ValueError as exc:
                    raise ValueError(f"{path}:{lineno}: {exc}") from None
    return spans


@dataclass
class Trace:
    """All spans sharing one trace id, arranged as a tree."""

    trace_id: str
    spans: List[Span]
    #: child span ids per parent span id (tree edges that resolved)
    children: Dict[str, List[str]] = field(default_factory=dict)
    #: spans whose parent is None or absent from the collected files
    roots: List[Span] = field(default_factory=list)
    #: spans parented to a span id we never saw (partial collection)
    orphans: List[Span] = field(default_factory=list)

    def __post_init__(self) -> None:
        by_id = {span.span_id: span for span in self.spans}
        self._by_id = by_id
        for span in self.spans:
            if span.parent_id is None:
                self.roots.append(span)
            elif span.parent_id in by_id:
                self.children.setdefault(span.parent_id, []).append(
                    span.span_id
                )
            else:
                self.orphans.append(span)
                self.roots.append(span)
        # deterministic order: earliest start first at every level
        self.roots.sort(key=lambda s: s.start_s)
        for ids in self.children.values():
            ids.sort(key=lambda sid: by_id[sid].start_s)

    @property
    def complete(self) -> bool:
        """True when every parent link resolved: one tree, no orphans."""
        return not self.orphans and len(self.roots) == 1

    @property
    def root(self) -> Optional[Span]:
        """The outermost span (client-side when the client recorded one)."""
        return self.roots[0] if self.roots else None

    @property
    def duration_s(self) -> float:
        root = self.root
        return root.duration_s if root is not None else 0.0

    def span_children(self, span: Span) -> List[Span]:
        return [
            self._by_id[sid] for sid in self.children.get(span.span_id, [])
        ]

    def walk(self) -> List[Tuple[int, Span]]:
        """(depth, span) pairs in depth-first, start-time order."""
        out: List[Tuple[int, Span]] = []

        def visit(span: Span, depth: int) -> None:
            out.append((depth, span))
            for child in self.span_children(span):
                visit(child, depth + 1)

        for root in self.roots:
            visit(root, 0)
        return out

    def critical_path(self) -> List[Span]:
        """Root-to-leaf chain following the longest child at each step.

        Sibling hops run in parallel (the coordinator's worker
        dispatches), so the *longest* child — not the sum — is what
        bounds the parent; following it to a leaf names the spans a
        latency fix must shrink.
        """
        path: List[Span] = []
        span = self.root
        while span is not None:
            path.append(span)
            children = self.span_children(span)
            span = (
                max(children, key=lambda s: s.duration_s)
                if children
                else None
            )
        return path

    def accounted_fraction(self) -> float:
        """Fraction of the root's wall time its descendants cover.

        Child intervals are merged on the shared wall clock before
        measuring, so two workers busy in parallel count their overlap
        once.  1.0 means the breakdown fully explains the latency;
        low values mean un-instrumented gaps.
        """
        root = self.root
        if root is None or root.duration_s <= 0.0:
            return 0.0
        lo, hi = root.start_s, root.end_s
        intervals = sorted(
            (max(span.start_s, lo), min(span.end_s, hi))
            for _, span in self.walk()
            if span is not root and span.end_s > lo and span.start_s < hi
        )
        covered = 0.0
        cur_lo: Optional[float] = None
        cur_hi = 0.0
        for start, end in intervals:
            if cur_lo is None:
                cur_lo, cur_hi = start, end
            elif start <= cur_hi:
                cur_hi = max(cur_hi, end)
            else:
                covered += cur_hi - cur_lo
                cur_lo, cur_hi = start, end
        if cur_lo is not None:
            covered += cur_hi - cur_lo
        return min(1.0, covered / root.duration_s)


def assemble_traces(spans: Iterable[Span]) -> List[Trace]:
    """Group spans by trace id into :class:`Trace` trees.

    Ordered slowest-first (by root span duration), which is the order
    a latency investigation reads them in.
    """
    by_trace: Dict[str, List[Span]] = {}
    for span in spans:
        by_trace.setdefault(span.trace_id, []).append(span)
    traces = [Trace(trace_id=tid, spans=ss) for tid, ss in by_trace.items()]
    traces.sort(key=lambda t: t.duration_s, reverse=True)
    return traces


def _quantile(sorted_values: Sequence[float], q: float) -> float:
    """Upper-bound quantile: smallest observed value ≥ q of the mass."""
    if not sorted_values:
        return 0.0
    rank = math.ceil(q * len(sorted_values))
    index = max(0, min(len(sorted_values) - 1, rank - 1))
    return sorted_values[index]


@dataclass(frozen=True)
class StageStats:
    """Latency distribution of one stage name across assembled traces."""

    name: str
    count: int
    total_s: float
    p50_s: float
    p99_s: float
    max_s: float


def stage_stats(traces: Iterable[Trace]) -> List[StageStats]:
    """Per-stage-name p50/p99 over every span in the given traces.

    Ordered by total time descending — the stage eating the most
    aggregate wall time leads, whether it is slow once or cheap but
    ubiquitous.
    """
    by_name: Dict[str, List[float]] = {}
    for trace in traces:
        for span in trace.spans:
            by_name.setdefault(span.name, []).append(span.duration_s)
    stats = []
    for name, durations in by_name.items():
        durations.sort()
        stats.append(
            StageStats(
                name=name,
                count=len(durations),
                total_s=sum(durations),
                p50_s=_quantile(durations, 0.50),
                p99_s=_quantile(durations, 0.99),
                max_s=durations[-1],
            )
        )
    stats.sort(key=lambda s: s.total_s, reverse=True)
    return stats


def render_trace(trace: Trace) -> str:
    """A human-readable tree of one trace (the ``repro trace`` detail)."""
    lines = [
        f"trace {trace.trace_id}"
        f"  spans={len(trace.spans)}"
        f"  duration={trace.duration_s * 1000.0:.2f}ms"
        + ("" if trace.complete else "  [INCOMPLETE]")
    ]
    root = trace.root
    base = root.start_s if root is not None else 0.0
    for depth, span in trace.walk():
        offset_ms = (span.start_s - base) * 1000.0
        meta = ""
        if span.meta:
            meta = "  " + " ".join(
                f"{key}={span.meta[key]}" for key in sorted(span.meta)
            )
        lines.append(
            f"  {'  ' * depth}{span.name} [{span.service}]"
            f"  +{offset_ms:.2f}ms"
            f"  {span.duration_s * 1000.0:.2f}ms{meta}"
        )
    return "\n".join(lines)
