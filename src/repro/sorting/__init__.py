"""Executable parallel sample sort (§3) with simulated timing.

The paper's Section 3 argues sorting is *almost* a divisible load: after
a cheap preprocessing phase (sample-based bucketing), the expensive
:math:`N \\log N` phase splits perfectly across workers.  This package
implements the real algorithm — it sorts actual NumPy arrays — while
also charging every phase to the paper's cost model, for both
homogeneous (§3.1) and heterogeneous (§3.2) platforms.
"""

from repro.sorting.splitters import (
    choose_splitters,
    heterogeneous_splitter_positions,
    bucketize,
)
from repro.sorting.sample_sort import (
    SampleSortResult,
    sample_sort,
    sequential_sort_work,
)
from repro.sorting.analysis import (
    max_bucket_statistics,
    BucketStats,
    empirical_b4_violation_rate,
)
from repro.sorting.dlt_schedule import (
    BucketSchedule,
    evaluate_order,
    largest_delivery_first,
    one_port_penalty,
)

__all__ = [
    "BucketSchedule",
    "evaluate_order",
    "largest_delivery_first",
    "one_port_penalty",
    "choose_splitters",
    "heterogeneous_splitter_positions",
    "bucketize",
    "SampleSortResult",
    "sample_sort",
    "sequential_sort_work",
    "max_bucket_statistics",
    "BucketStats",
    "empirical_b4_violation_rate",
]
