"""The plan service's wire formats: pickle-v1 and binary-v2 profiles.

Every binary payload the service moves — a
:class:`~repro.core.pipeline.PlanRequest`, a
:class:`~repro.core.vectorize.VectorGroup`, a list of
:class:`~repro.core.pipeline.PlanResult`\\ s, a plan-cache key —
travels as one *envelope*, in one of two profiles:

``pickle-v1`` (:data:`PROFILE_PICKLE`) — the original format::

    repro-plan-wire:v1\\n          <- magic line, checked BEFORE unpickling
    pickle({"format":  "repro-plan-service",
            "version": 1,
            "payload": <the object>})

``binary-v2`` (:data:`PROFILE_BINARY`) — a typed, pickle-free codec::

    repro-plan-wire:v2\\n          <- magic line
    <8-byte big-endian header length>
    json({"format": "repro-plan-service", "version": 2,
          "payload": <tagged tree>,
          "frames":  [[dtype, shape, offset, nbytes], ...]})
    <frame 0 raw bytes><frame 1 raw bytes>...

In v2 every NumPy array rides *out of band*: the JSON header carries
its dtype/shape and a byte range, the body carries the contiguous
bytes, and decoding is ``np.frombuffer`` straight over the received
buffer — no pickle, no base64, no copy (the decoded arrays are
read-only views of the message body; encoding joins the frames'
memoryviews into the body with a single copy).  Everything else is a
tagged JSON tree handled by an explicit codec for the service's own
types, so decoding v2 never executes anything from the payload.

The magic line makes accidental cross-talk (posting a cache export, an
HTML error page, or an unknown wire version at an endpoint) fail with
a clean :class:`WireError` *without* executing anything from the body.
Peers negotiate profiles per request with the :data:`PROFILE_HEADER`
HTTP header and discover each other's profiles from ``/healthz``
(see :mod:`repro.service.server` and :mod:`repro.service.client`); a
server running ``--wire safe`` refuses pickle-v1 envelopes entirely.

Trust model: a ``pickle-v1`` body is still a pickle, and unpickling
runs code — that profile remains for *trusted* networks only, the same
caveat ``repro cache import`` has carried since PR 4.  The
``binary-v2`` profile removes that exposure for all built-in payload
types; a custom strategy whose params or detail carry arbitrary Python
objects must either keep to codec-supported types or stay on v1.
"""

from __future__ import annotations

import base64
import dataclasses
import json
import pickle
from typing import Any, Dict, List, Sequence, Tuple

import numpy as np

#: dotted format name embedded in every envelope
WIRE_FORMAT = "repro-plan-service"
#: version of the pickle profile; both ends must match
WIRE_VERSION = 1
#: version of the binary profile
WIRE_V2_VERSION = 2
#: magic first line of a pickle-v1 envelope; checked before unpickling
WIRE_MAGIC = b"repro-plan-wire:v1\n"
#: magic first line of a binary-v2 envelope
WIRE_V2_MAGIC = b"repro-plan-wire:v2\n"
#: content type the HTTP endpoints speak for binary envelopes
CONTENT_TYPE = "application/x-repro-plan"
#: HTTP header advertising the sender's wire version (legacy, v1)
VERSION_HEADER = "X-Repro-Wire-Version"
#: HTTP header naming the profile a request/response body is packed in
PROFILE_HEADER = "X-Repro-Wire"
#: HTTP header a distributed-trace context travels in.  Defined in
#: :mod:`repro.obs.context` (stdlib-only, so core layers may import it
#: without pulling in numpy); re-exported here because this module is
#: where the service's header names live.
from repro.obs.context import TRACE_HEADER  # noqa: E402,F401

#: the pickle envelope profile (trusted networks only)
PROFILE_PICKLE = "pickle-v1"
#: the typed zero-copy binary profile
PROFILE_BINARY = "binary-v2"
#: every profile this build speaks, preference order first
PROFILES: Tuple[str, ...] = (PROFILE_BINARY, PROFILE_PICKLE)


class WireError(ValueError):
    """The bytes on the wire are not a valid envelope (or wrong version)."""


# ---------------------------------------------------------------------------
# pickle-v1 profile


def pack(payload: Any) -> bytes:
    """Wrap ``payload`` in a magic-prefixed, versioned pickle envelope."""
    return WIRE_MAGIC + pickle.dumps(
        {"format": WIRE_FORMAT, "version": WIRE_VERSION, "payload": payload},
        protocol=pickle.HIGHEST_PROTOCOL,
    )


def unpack(data: bytes) -> Any:
    """Validate a pickle-v1 envelope and return its payload.

    The magic prefix is checked before any unpickling, so arbitrary
    bytes posted at a service endpoint (or a service response read by
    something that is not a service client) are rejected without
    executing anything from them.
    """
    if not data.startswith(WIRE_MAGIC):
        raise WireError(
            "not a repro plan-service envelope (missing "
            f"{WIRE_MAGIC!r} header)"
        )
    try:
        envelope = pickle.loads(data[len(WIRE_MAGIC):])
    except Exception as exc:  # pickle raises a small zoo of types
        raise WireError(f"undecodable plan-service envelope ({exc})") from None
    if not isinstance(envelope, dict) or envelope.get("format") != WIRE_FORMAT:
        raise WireError("not a repro plan-service envelope (bad format field)")
    version = envelope.get("version")
    if version != WIRE_VERSION:
        raise WireError(
            f"wire version mismatch: peer speaks {version!r}, "
            f"this end speaks {WIRE_VERSION} — upgrade the older side"
        )
    if "payload" not in envelope:
        raise WireError("not a repro plan-service envelope (no payload)")
    return envelope["payload"]


# ---------------------------------------------------------------------------
# binary-v2 profile: typed tagged-tree codec with out-of-band array frames
#
# A node is either a JSON scalar (None/bool/int/float/str, encoded
# natively) or a JSON array whose first element is a type tag.  Plain
# Python containers therefore always encode as tagged arrays, so there
# is no ambiguity between a payload list and a codec node.


_COMM_MODELS: Dict[str, type] = {}


def _comm_model_registry() -> Dict[str, type]:
    if not _COMM_MODELS:
        from repro.platform.comm_models import (
            BoundedMultiport,
            OnePort,
            ParallelLinks,
        )

        _COMM_MODELS.update(
            ParallelLinks=ParallelLinks,
            OnePort=OnePort,
            BoundedMultiport=BoundedMultiport,
        )
    return _COMM_MODELS


#: codec dispatch tables, bound on first pack/unpack by :func:`_load_codec`
#: so importing this module never drags the whole library in — yet the
#: per-node hot path is a flat ``type -> encoder`` / ``tag -> decoder``
#: lookup, not an isinstance chain with per-call imports
_CODEC_READY = False
_ENCODERS: Dict[type, Any] = {}
_DECODERS: Dict[str, Any] = {}


def _load_codec() -> None:
    global _CODEC_READY, _StrategyResult, _PlanRequest, _PlanResult
    global _VectorGroup, _Partition, _Rectangle, _CommunicationModel
    global _Processor, _StarPlatform
    if _CODEC_READY:
        return
    from repro.blocks.metrics import StrategyResult
    from repro.core.pipeline import PlanRequest, PlanResult
    from repro.core.vectorize import VectorGroup
    from repro.partition.rectangle import Partition, Rectangle
    from repro.platform.comm_models import CommunicationModel
    from repro.platform.processor import Processor
    from repro.platform.star import StarPlatform

    _StrategyResult = StrategyResult
    _PlanRequest = PlanRequest
    _PlanResult = PlanResult
    _VectorGroup = VectorGroup
    _Partition = Partition
    _Rectangle = Rectangle
    _CommunicationModel = CommunicationModel
    _Processor = Processor
    _StarPlatform = StarPlatform

    _ENCODERS.update(
        {
            bool: _enc_identity,
            str: _enc_identity,
            int: _enc_identity,
            float: _enc_identity,
            np.int32: _enc_int,
            np.int64: _enc_int,
            np.intp: _enc_int,
            np.float32: _enc_float,
            np.float64: _enc_float,
            np.bool_: _enc_bool,
            np.ndarray: _enc_ndarray,
            bytes: _enc_bytes,
            list: _enc_list,
            tuple: _enc_tuple,
            dict: _enc_dict,
            frozenset: _enc_frozenset,
            set: _enc_set,
            PlanResult: _enc_result,
            PlanRequest: _enc_request,
            VectorGroup: _enc_group,
            StrategyResult: _enc_strategy_result,
            StarPlatform: _enc_platform,
            Processor: _enc_processor,
            Partition: _enc_partition,
            Rectangle: _enc_rectangle,
        }
    )
    for cls in _comm_model_registry().values():
        _ENCODERS[cls] = _enc_comm_model
    _DECODERS.update(
        {
            "nd": _dec_nd,
            "by": _dec_by,
            "l": _dec_list,
            "t": _dec_tuple,
            "d": _dec_dict,
            "fs": _dec_frozenset,
            "set": _dec_set,
            "res": _dec_result,
            "req": _dec_request,
            "vg": _dec_group,
            "sr": _dec_strategy_result,
            "plat": _dec_platform,
            "proc": _dec_processor,
            "cm": _dec_comm_model,
            "part": _dec_partition,
            "rect": _dec_rectangle,
        }
    )
    _CODEC_READY = True


def _encode(obj: Any, frames: List[np.ndarray]) -> Any:
    """Encode ``obj`` into a JSON-able tagged node, collecting frames."""
    if obj is None:
        return None
    encoder = _ENCODERS.get(obj.__class__)
    if encoder is not None:
        return encoder(obj, frames)
    return _encode_other(obj, frames)


def _encode_other(obj: Any, frames: List[np.ndarray]) -> Any:
    """Slow path for subclasses and the long tail of NumPy scalar types."""
    if isinstance(obj, str):
        return str(obj)
    if isinstance(obj, (bool, np.bool_)):
        return bool(obj)
    if isinstance(obj, (int, np.integer)):
        return int(obj)
    if isinstance(obj, (float, np.floating)):
        return float(obj)
    if isinstance(obj, np.ndarray):
        return _enc_ndarray(obj, frames)
    if isinstance(obj, bytes):
        return _enc_bytes(obj, frames)
    if isinstance(obj, list):
        return _enc_list(obj, frames)
    if isinstance(obj, tuple):
        return _enc_tuple(obj, frames)
    if isinstance(obj, dict):
        return _enc_dict(obj, frames)
    if isinstance(obj, frozenset):
        return _enc_frozenset(obj, frames)
    if isinstance(obj, set):
        return _enc_set(obj, frames)
    if isinstance(obj, _CommunicationModel):
        kind = type(obj).__name__
        if kind not in _comm_model_registry():
            raise WireError(
                f"the binary-v2 wire profile cannot encode custom "
                f"communication model {kind!r}"
            )
        return _enc_comm_model(obj, frames)
    for cls in (
        _PlanResult,
        _PlanRequest,
        _VectorGroup,
        _StrategyResult,
        _StarPlatform,
        _Processor,
        _Partition,
        _Rectangle,
    ):
        if isinstance(obj, cls):
            return _ENCODERS[cls](obj, frames)
    raise WireError(
        f"the binary-v2 wire profile cannot encode {type(obj).__name__} "
        "payloads; keep custom params/detail to codec-supported types or "
        f"use the {PROFILE_PICKLE} profile"
    )


def _enc_identity(obj, frames):
    return obj


def _enc_int(obj, frames):
    return int(obj)


def _enc_float(obj, frames):
    return float(obj)


def _enc_bool(obj, frames):
    return bool(obj)


def _enc_ndarray(obj, frames):
    if obj.dtype.hasobject:
        raise WireError(
            "the binary-v2 wire profile cannot encode object arrays"
        )
    frames.append(obj)
    return ["nd", len(frames) - 1]


def _enc_bytes(obj, frames):
    return ["by", base64.b64encode(obj).decode("ascii")]


def _enc_list(obj, frames):
    return ["l", *[_encode(v, frames) for v in obj]]


def _enc_tuple(obj, frames):
    return ["t", *[_encode(v, frames) for v in obj]]


def _enc_dict(obj, frames):
    return [
        "d",
        *[[_encode(k, frames), _encode(v, frames)] for k, v in obj.items()],
    ]


def _enc_frozenset(obj, frames):
    return ["fs", *[_encode(v, frames) for v in obj]]


def _enc_set(obj, frames):
    return ["set", *[_encode(v, frames) for v in obj]]


def _enc_result(obj, frames):
    return [
        "res",
        _encode(obj.request, frames),
        _encode(obj.plan, frames),
        float(obj.elapsed_s),
        bool(obj.cached),
    ]


def _enc_request(obj, frames):
    return [
        "req",
        _encode(obj.platform, frames),
        float(obj.N),
        obj.strategy,
        _encode(dict(obj.params), frames),
    ]


def _enc_group(obj, frames):
    return ["vg", obj.strategy, *[_encode(r, frames) for r in obj.requests]]


def _enc_strategy_result(obj, frames):
    return [
        "sr",
        obj.strategy,
        float(obj.N),
        _encode(obj.speeds, frames),
        float(obj.comm_volume),
        _encode(obj.finish_times, frames),
        float(obj.imbalance),
        _encode(obj.detail, frames),
    ]


def _enc_platform(obj, frames):
    procs = obj.processors
    return [
        "plat",
        _enc_ndarray(np.array([proc.speed for proc in procs]), frames),
        _enc_ndarray(np.array([proc.bandwidth for proc in procs]), frames),
        [proc.name for proc in procs],
        _encode(obj.comm_model, frames),
    ]


def _enc_processor(obj, frames):
    return ["proc", float(obj.speed), float(obj.bandwidth), obj.name]


def _enc_comm_model(obj, frames):
    fields = {
        f.name: _encode(getattr(obj, f.name), frames)
        for f in dataclasses.fields(obj)
        if f.name != "name"
    }
    return ["cm", type(obj).__name__, fields]


def _enc_partition(obj, frames):
    x, y, w, h, owner = obj.coords()
    return [
        "part",
        _enc_ndarray(x, frames),
        _enc_ndarray(y, frames),
        _enc_ndarray(w, frames),
        _enc_ndarray(h, frames),
        _enc_ndarray(owner, frames),
        float(obj.side),
    ]


def _enc_rectangle(obj, frames):
    return [
        "rect",
        float(obj.x),
        float(obj.y),
        float(obj.w),
        float(obj.h),
        int(obj.owner),
    ]


def _decode(node: Any, frames: Sequence[np.ndarray]) -> Any:
    """Rebuild the object a tagged node describes."""
    if type(node) is not list:
        if node is None or type(node) in (bool, int, float, str):
            return node
        raise WireError(
            f"invalid binary-v2 node of type {type(node).__name__}"
        )
    if not node:
        raise WireError("empty binary-v2 node")
    decoder = _DECODERS.get(node[0])
    if decoder is None:
        raise WireError(f"unknown binary-v2 node tag {node[0]!r}")
    return decoder(node, frames)


def _dec_nd(node, frames):
    return frames[node[1]]


def _dec_by(node, frames):
    return base64.b64decode(node[1])


def _dec_list(node, frames):
    return [_decode(v, frames) for v in node[1:]]


def _dec_tuple(node, frames):
    return tuple(_decode(v, frames) for v in node[1:])


def _dec_dict(node, frames):
    return {
        _decode(k, frames): _decode(v, frames) for k, v in node[1:]
    }


def _dec_frozenset(node, frames):
    return frozenset(_decode(v, frames) for v in node[1:])


def _dec_set(node, frames):
    return {_decode(v, frames) for v in node[1:]}


def _dec_result(node, frames):
    _, request, plan, elapsed_s, cached = node
    return _PlanResult(
        request=_decode(request, frames),
        plan=_decode(plan, frames),
        elapsed_s=float(elapsed_s),
        cached=bool(cached),
    )


def _dec_request(node, frames):
    _, platform, N, strategy, params = node
    return _PlanRequest(
        platform=_decode(platform, frames),
        N=float(N),
        strategy=str(strategy),
        params=_decode(params, frames),
    )


def _dec_group(node, frames):
    return _VectorGroup(
        strategy=str(node[1]),
        requests=tuple(_decode(r, frames) for r in node[2:]),
    )


def _dec_strategy_result(node, frames):
    _, strategy, N, speeds, comm_volume, finish, imbalance, detail = node
    return _StrategyResult(
        strategy=str(strategy),
        N=float(N),
        speeds=_decode(speeds, frames),
        comm_volume=float(comm_volume),
        finish_times=_decode(finish, frames),
        imbalance=float(imbalance),
        detail=_decode(detail, frames),
    )


def _dec_platform(node, frames):
    _, speeds, bandwidths, names, comm_model = node
    s = np.asarray(_decode(speeds, frames), dtype=float)
    b = np.asarray(_decode(bandwidths, frames), dtype=float)
    if s.ndim != 1 or s.shape != b.shape or len(names) != s.size:
        raise WireError("platform arrays disagree on worker count")
    # vectorised equivalent of Processor.__post_init__'s per-field
    # checks — one pass over the arrays instead of 2p scalar calls
    if not (
        np.isfinite(s).all()
        and np.isfinite(b).all()
        and (s > 0.0).all()
        and (b > 0.0).all()
    ):
        raise WireError("platform speeds/bandwidths must be positive finite")
    new = _Processor.__new__
    procs = []
    for speed, bandwidth, name in zip(s.tolist(), b.tolist(), names):
        proc = new(_Processor)
        d = proc.__dict__
        d["speed"] = speed
        d["bandwidth"] = bandwidth
        d["name"] = str(name)
        procs.append(proc)
    return _StarPlatform(
        tuple(procs), comm_model=_decode(comm_model, frames)
    )


def _dec_processor(node, frames):
    _, speed, bandwidth, name = node
    return _Processor(
        speed=float(speed), bandwidth=float(bandwidth), name=str(name)
    )


def _dec_comm_model(node, frames):
    _, kind, fields = node
    cls = _comm_model_registry().get(kind)
    if cls is None:
        raise WireError(f"unknown communication model {kind!r} on the wire")
    return cls(**{str(k): _decode(v, frames) for k, v in fields.items()})


def _dec_partition(node, frames):
    _, x, y, w, h, owner, side = node
    return _Partition.from_arrays(
        _decode(x, frames),
        _decode(y, frames),
        _decode(w, frames),
        _decode(h, frames),
        _decode(owner, frames),
        side=float(side),
    )


def _dec_rectangle(node, frames):
    _, x, y, w, h, owner = node
    return _Rectangle(
        x=float(x), y=float(y), w=float(w), h=float(h), owner=int(owner)
    )


def pack_v2(payload: Any) -> bytes:
    """Pack ``payload`` as a binary-v2 envelope (typed, pickle-free).

    Array frames are appended as raw contiguous bytes after the JSON
    header; their memoryviews are joined into the body without an
    intermediate per-array copy.
    """
    _load_codec()
    frames: List[np.ndarray] = []
    node = _encode(payload, frames)
    meta: List[List[Any]] = []
    blobs: List[memoryview] = []
    offset = 0
    for arr in frames:
        arr = np.ascontiguousarray(arr)
        meta.append([arr.dtype.str, list(arr.shape), offset, arr.nbytes])
        blobs.append(memoryview(arr).cast("B"))
        offset += arr.nbytes
    header = json.dumps(
        {
            "format": WIRE_FORMAT,
            "version": WIRE_V2_VERSION,
            "payload": node,
            "frames": meta,
        },
        separators=(",", ":"),
    ).encode("utf-8")
    return b"".join(
        [WIRE_V2_MAGIC, len(header).to_bytes(8, "big"), header, *blobs]
    )


def unpack_v2(data: bytes) -> Any:
    """Validate a binary-v2 envelope and return its payload.

    Decoding never unpickles: the header is JSON, the frames are
    rebuilt with ``np.frombuffer`` as read-only views sharing the
    received buffer (zero-copy), and the tagged tree maps onto the
    service's own types through the explicit codec.  Truncated or
    garbled envelopes raise :class:`WireError`.
    """
    if not data.startswith(WIRE_V2_MAGIC):
        raise WireError(
            "not a repro plan-service envelope (missing "
            f"{WIRE_V2_MAGIC!r} header)"
        )
    prefix = len(WIRE_V2_MAGIC)
    if len(data) < prefix + 8:
        raise WireError("truncated binary-v2 envelope (no header length)")
    header_len = int.from_bytes(data[prefix:prefix + 8], "big")
    body_start = prefix + 8 + header_len
    if header_len <= 0 or body_start > len(data):
        raise WireError("truncated binary-v2 envelope (header cut short)")
    try:
        header = json.loads(data[prefix + 8:body_start].decode("utf-8"))
    except Exception as exc:
        raise WireError(
            f"undecodable binary-v2 envelope header ({exc})"
        ) from None
    if not isinstance(header, dict) or header.get("format") != WIRE_FORMAT:
        raise WireError("not a repro plan-service envelope (bad format field)")
    version = header.get("version")
    if version != WIRE_V2_VERSION:
        raise WireError(
            f"wire version mismatch: peer speaks {version!r}, "
            f"this end speaks {WIRE_V2_VERSION} — upgrade the older side"
        )
    if "payload" not in header:
        raise WireError("not a repro plan-service envelope (no payload)")
    _load_codec()
    try:
        frames = []
        for dtype, shape, offset, nbytes in header.get("frames", []):
            dt = np.dtype(dtype)
            if dt.hasobject:
                raise WireError("object dtypes are not allowed on the wire")
            count = 1
            for dim in shape:
                count *= int(dim)
            if count * dt.itemsize != nbytes:
                raise WireError(
                    f"frame geometry mismatch: {shape} of {dtype} is not "
                    f"{nbytes} bytes"
                )
            start = body_start + int(offset)
            if start + nbytes > len(data):
                raise WireError("truncated binary-v2 envelope (frame cut short)")
            frames.append(
                np.frombuffer(data, dtype=dt, count=count, offset=start)
                .reshape([int(dim) for dim in shape])
            )
        return _decode(header["payload"], frames)
    except WireError:
        raise
    except Exception as exc:
        raise WireError(f"malformed binary-v2 envelope ({exc})") from None


# ---------------------------------------------------------------------------
# profile negotiation


def detect_profile(data: bytes) -> str:
    """Name the profile ``data`` is packed in, from its magic line."""
    if data.startswith(WIRE_MAGIC):
        return PROFILE_PICKLE
    if data.startswith(WIRE_V2_MAGIC):
        return PROFILE_BINARY
    raise WireError(
        "not a repro plan-service envelope (unrecognised magic header)"
    )


def pack_as(payload: Any, profile: str) -> bytes:
    """Pack ``payload`` in the named profile."""
    if profile == PROFILE_BINARY:
        return pack_v2(payload)
    if profile == PROFILE_PICKLE:
        return pack(payload)
    raise WireError(
        f"unknown wire profile {profile!r}; this build speaks {PROFILES}"
    )


def unpack_any(data: bytes, allowed: Sequence[str] | None = None) -> Any:
    """Detect a profile from the magic line, validate it, and unpack.

    ``allowed`` restricts the accepted profiles — a ``--wire safe``
    server passes ``(PROFILE_BINARY,)`` so pickle envelopes are refused
    *before* any unpickling could happen.
    """
    profile = detect_profile(data)
    if allowed is not None and profile not in allowed:
        raise WireError(
            f"wire profile {profile!r} refused by this endpoint "
            f"(accepted: {', '.join(allowed)})"
        )
    if profile == PROFILE_BINARY:
        return unpack_v2(data)
    return unpack(data)
