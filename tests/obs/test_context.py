"""TraceContext: header round-trips, child hops, lenient parsing."""

import re

import pytest

from repro.obs import (
    SPAN_ID_CHARS,
    TRACE_HEADER,
    TRACE_ID_CHARS,
    TraceContext,
    new_span_id,
    new_trace_id,
    parse_trace_header,
    start_trace,
)


class TestIds:
    def test_trace_id_shape(self):
        tid = new_trace_id()
        assert re.fullmatch(rf"[0-9a-f]{{{TRACE_ID_CHARS}}}", tid)

    def test_span_id_shape(self):
        sid = new_span_id()
        assert re.fullmatch(rf"[0-9a-f]{{{SPAN_ID_CHARS}}}", sid)

    def test_ids_are_random(self):
        assert len({new_trace_id() for _ in range(32)}) == 32


class TestHeaderRoundTrip:
    def test_sampled(self):
        ctx = start_trace()
        assert ctx.to_header().endswith("-01")
        assert parse_trace_header(ctx.to_header()) == ctx

    def test_unsampled(self):
        ctx = start_trace(sampled=False)
        assert ctx.to_header().endswith("-00")
        parsed = parse_trace_header(ctx.to_header())
        assert parsed == ctx
        assert not parsed.sampled

    def test_header_shape(self):
        ctx = TraceContext(trace_id="0" * 16, span_id="a" * 8)
        assert ctx.to_header() == "0" * 16 + "-" + "a" * 8 + "-01"

    def test_header_name_is_stable(self):
        # wire contract: clients and servers must agree forever
        assert TRACE_HEADER == "X-Repro-Trace"


class TestParseLenient:
    @pytest.mark.parametrize(
        "value",
        [
            None,
            "",
            "garbage",
            "0" * 16,  # no span/flags
            "0" * 16 + "-" + "a" * 8,  # no flags
            "0" * 16 + "-" + "a" * 8 + "-02",  # bad flags
            "0" * 15 + "-" + "a" * 8 + "-01",  # short trace id
            "0" * 16 + "-" + "a" * 7 + "-01",  # short span id
            "0" * 16 + "-" + "A" * 8 + "-01",  # uppercase hex
            "0" * 16 + "_" + "a" * 8 + "-01",  # wrong separator
        ],
    )
    def test_malformed_yields_none(self, value):
        assert parse_trace_header(value) is None

    def test_surrounding_whitespace_tolerated(self):
        ctx = start_trace()
        assert parse_trace_header(f"  {ctx.to_header()} ") == ctx


class TestChild:
    def test_child_keeps_trace_identity(self):
        ctx = start_trace()
        child = ctx.child()
        assert child.trace_id == ctx.trace_id
        assert child.sampled == ctx.sampled
        assert child.span_id != ctx.span_id

    def test_child_of_unsampled_stays_unsampled(self):
        assert not start_trace(sampled=False).child().sampled

    def test_context_is_immutable(self):
        ctx = start_trace()
        with pytest.raises(AttributeError):
            ctx.trace_id = "nope"
