#!/usr/bin/env python3
"""Section 4.2 + MapReduce walkthrough: matrix multiplication volumes.

Runs real MapReduce jobs on the metered engine and exact per-step
accounting of the outer-product matmul (Figure 3), reproducing the
paper's motivation numbers: the naive prepared-dataset job shuffles N³
records; block replication ships 2qN²; the heterogeneity-aware
partitioned layout stays within ~2% of the lower bound and balances
load perfectly.

Run: ``python examples/matmul_mapreduce.py``
"""

import numpy as np

from repro import StarPlatform, peri_sum_partition
from repro.mapreduce import (
    MapReduceEngine,
    block_matmul_job,
    naive_matmul_job,
)
from repro.mapreduce.jobs import assemble_block_output
from repro.matmul import (
    RectangleLayout,
    partitioned_matmul,
    simulate_outer_product_matmul,
)
from repro.matmul.mapreduce_layouts import (
    hama_block_volume,
    matmul_lower_bound,
    naive_mapreduce_volume,
    partitioned_volume,
)
from repro.util.tables import format_table


def main() -> None:
    rng = np.random.default_rng(7)
    n, q = 12, 3
    A, B = rng.normal(size=(n, n)), rng.normal(size=(n, n))
    engine = MapReduceEngine()

    # --- executable MapReduce jobs, metered ----------------------------
    job, inputs = naive_matmul_job(A, B)
    out_naive, m_naive = engine.run_with_metrics(job, inputs)
    C1 = np.empty((n, n))
    for (i, j), v in out_naive.items():
        C1[i, j] = v
    assert np.allclose(C1, A @ B)

    job, inputs = block_matmul_job(A, B, q)
    out_block, m_block = engine.run_with_metrics(job, inputs)
    assert np.allclose(assemble_block_output(out_block, n, q), A @ B)

    print(
        format_table(
            ["job", "shuffle records", "shuffle volume"],
            [
                ["naive all-pairs (§1.1)", m_naive.shuffle_records,
                 m_naive.shuffle_volume],
                [f"HAMA blocks q={q}", m_block.shuffle_records,
                 m_block.shuffle_volume],
            ],
            title=f"Executable MapReduce matmul (N={n}), both verified == A@B:",
        )
    )
    print()

    # --- closed-form volumes at production scale ------------------------
    N = 10_000
    speeds = rng.uniform(1, 100, 64)
    rows = [
        ["naive all-pairs input", naive_mapreduce_volume(N)],
        ["HAMA blocks (q=8 of 64 reducers)", hama_block_volume(N, 8)],
        ["partitioned (PERI-SUM, heterogeneous)", partitioned_volume(N, speeds)],
        ["lower bound 2N^2 sum sqrt(x)", matmul_lower_bound(N, speeds)],
    ]
    print(
        format_table(
            ["layout", "volume (matrix elements)"],
            rows,
            floatfmt=".4e",
            title=f"Matmul communication volumes at N={N}, p=64 uniform speeds:",
        )
    )
    print()

    # --- Figure 3: per-step broadcast accounting + numeric check --------
    areas = speeds[:6] / speeds[:6].sum()
    part = peri_sum_partition(areas)
    layout = RectangleLayout(part, n=30)
    acct = simulate_outer_product_matmul(layout)
    print(
        f"Outer-product algorithm on a 6-worker rectangle layout (n=30): "
        f"received {acct.total_received:,.0f} elements over {acct.n} steps "
        f"({acct.reuse_savings:,.0f} saved by residency)."
    )
    A2, B2 = rng.normal(size=(30, 30)), rng.normal(size=(30, 30))
    assert np.allclose(partitioned_matmul(A2, B2, part), A2 @ B2)
    print("Partitioned product verified against A @ B to machine precision.")


if __name__ == "__main__":
    main()
