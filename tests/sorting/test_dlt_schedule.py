"""Tests for repro.sorting.dlt_schedule — one-port bucket shipping."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.platform.star import StarPlatform
from repro.sorting.dlt_schedule import (
    brute_force_best_order,
    evaluate_order,
    largest_delivery_first,
    one_port_penalty,
)


class TestEvaluateOrder:
    def test_timeline_structure(self):
        plat = StarPlatform.homogeneous(2)
        sched = evaluate_order(plat, [8, 4], order=[0, 1])
        assert sched.send_start[0] == 0.0
        assert sched.send_end[0] == pytest.approx(8.0)
        assert sched.send_start[1] == pytest.approx(8.0)
        # finish = send_end + n log2 n
        assert sched.finish[0] == pytest.approx(8.0 + 24.0)

    def test_invalid_order_rejected(self):
        plat = StarPlatform.homogeneous(2)
        with pytest.raises(ValueError, match="permutation"):
            evaluate_order(plat, [1, 1], order=[0, 0])

    def test_size_count_checked(self):
        plat = StarPlatform.homogeneous(2)
        with pytest.raises(ValueError):
            evaluate_order(plat, [1, 2, 3], order=[0, 1])

    def test_negative_sizes_rejected(self):
        plat = StarPlatform.homogeneous(2)
        with pytest.raises(ValueError):
            evaluate_order(plat, [1, -1], order=[0, 1])


class TestLargestDeliveryFirst:
    def test_big_buckets_shipped_first(self):
        plat = StarPlatform.homogeneous(3)
        sched = largest_delivery_first(plat, [10, 1000, 100])
        assert sched.order == (1, 2, 0)

    @given(
        sizes=st.lists(st.integers(0, 500), min_size=1, max_size=6),
        speeds=st.lists(
            st.floats(min_value=0.5, max_value=10.0), min_size=1, max_size=6
        ),
    )
    @settings(max_examples=60, deadline=None)
    def test_matches_brute_force(self, sizes, speeds):
        """Jackson's rule certified against exhaustive search."""
        p = min(len(sizes), len(speeds))
        plat = StarPlatform.from_speeds(speeds[:p])
        sizes = sizes[:p]
        ldt = largest_delivery_first(plat, sizes)
        best = brute_force_best_order(plat, sizes)
        assert ldt.makespan == pytest.approx(best.makespan, rel=1e-12)

    def test_zero_buckets_ok(self):
        plat = StarPlatform.homogeneous(3)
        sched = largest_delivery_first(plat, [0, 5, 0])
        assert np.isfinite(sched.makespan)


class TestOnePortPenalty:
    def test_penalty_nonnegative(self):
        plat = StarPlatform.homogeneous(4)
        assert one_port_penalty(plat, [100, 100, 100, 100]) >= 0.0

    def test_penalty_grows_with_p(self):
        """Serialising more equal sends hurts more."""
        small = one_port_penalty(StarPlatform.homogeneous(2), [1000] * 2)
        large = one_port_penalty(StarPlatform.homogeneous(8), [1000] * 8)
        assert large > small

    def test_penalty_vanishes_when_compute_dominates(self):
        """Huge local sorts amortise the serialised sends."""
        plat = StarPlatform.from_speeds([1e-4, 1e-4], bandwidths=[1e6, 1e6])
        penalty = one_port_penalty(plat, [10_000, 10_000])
        assert penalty < 0.01

    def test_empty_platform_degenerate(self):
        plat = StarPlatform.homogeneous(1)
        assert one_port_penalty(plat, [0]) == 0.0
