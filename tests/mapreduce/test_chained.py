"""Tests for repro.mapreduce.chained — the §2 option (ii)."""

import numpy as np
import pytest

from repro.mapreduce.chained import (
    run_chain,
    two_pass_matmul,
    two_pass_matmul_jobs,
)
from repro.mapreduce.engine import MapReduceJob


class TestRunChain:
    def test_single_job_chain(self):
        job = MapReduceJob(
            map_fn=lambda rec: [(rec, 1)],
            reduce_fn=lambda k, vs: [(k, sum(vs))],
            n_reducers=2,
        )
        chain = run_chain([job], list("aab"))
        assert chain.final_output == {"a": 2, "b": 1}
        assert len(chain.metrics) == 1

    def test_two_stage_pipeline(self):
        """Stage 1 counts words; stage 2 buckets counts by parity."""
        count = MapReduceJob(
            map_fn=lambda rec: [(rec, 1)],
            reduce_fn=lambda k, vs: [(k, sum(vs))],
            n_reducers=2,
        )
        parity = MapReduceJob(
            map_fn=lambda kv: [(kv[1] % 2, 1)],
            reduce_fn=lambda k, vs: [(k, sum(vs))],
            n_reducers=2,
        )
        chain = run_chain([count, parity], list("aabbbc"))
        # counts: a=2, b=3, c=1 → parities {0: 1 word, 1: 2 words}
        assert chain.final_output == {0: 1, 1: 2}
        assert chain.total_shuffle_volume == pytest.approx(
            chain.metrics[0].shuffle_volume + chain.metrics[1].shuffle_volume
        )

    def test_adapter_count_checked(self):
        job = MapReduceJob(
            map_fn=lambda r: [(r, 1)],
            reduce_fn=lambda k, vs: [(k, sum(vs))],
        )
        with pytest.raises(ValueError, match="adapters"):
            run_chain([job, job], ["a"], adapters=[])

    def test_empty_chain_rejected(self):
        with pytest.raises(ValueError):
            run_chain([], ["a"])


class TestTwoPassMatmul:
    def test_correct_product(self):
        rng = np.random.default_rng(0)
        A, B = rng.normal(size=(6, 6)), rng.normal(size=(6, 6))
        C, _ = two_pass_matmul(A, B)
        assert np.allclose(C, A @ B)

    def test_identity(self):
        M = np.arange(16.0).reshape(4, 4)
        C, _ = two_pass_matmul(np.eye(4), M)
        assert np.allclose(C, M)

    def test_shuffle_profile_matches_section2(self):
        """Pass 1 shuffles only 2N² inputs; pass 2 shuffles N³ partial
        products — the cubic blow-up moved, not removed."""
        n = 6
        A = np.ones((n, n))
        _, chain = two_pass_matmul(A, A)
        m1, m2 = chain.metrics
        assert m1.shuffle_records == 2 * n * n
        assert m2.shuffle_records == n**3
        # option (ii) total vs option (i)'s prepared-dataset volume:
        # both are Θ(N³); sequencing saves only the constant
        assert chain.total_shuffle_volume >= n**3

    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            two_pass_matmul_jobs(np.zeros((2, 3)), np.zeros((3, 3)))
