"""Shared configuration for the benchmark harness.

Every benchmark regenerates one paper table/figure (see DESIGN.md's
per-experiment index) and *prints* the regenerated table, so running

    pytest benchmarks/ --benchmark-only -s

reproduces the paper's evaluation on stdout.  By default the sweeps use
a reduced trial count to keep the harness fast; set ``REPRO_FULL=1`` to
run the paper's full protocol (100 trials/point, p up to 100).
"""

from __future__ import annotations

import os

import pytest

FULL = os.environ.get("REPRO_FULL", "") not in ("", "0", "false")

#: trials per sweep point (paper: 100)
TRIALS = 100 if FULL else 15
#: processor counts for the Figure-4 x-axis (paper: 10..100)
PROCESSORS = (10, 20, 40, 60, 80, 100) if FULL else (10, 40, 100)


@pytest.fixture(scope="session")
def figure4_protocol():
    return {"processors": PROCESSORS, "trials": TRIALS}
