"""Tests for repro.dlt.ordering."""

import numpy as np
import pytest

from repro.dlt.ordering import (
    bandwidth_order,
    best_one_port_order,
    brute_force_one_port_order,
    order_gap,
)
from repro.dlt.single_round import solve_linear_one_port
from repro.platform.star import StarPlatform


class TestBandwidthOrder:
    def test_sorts_by_comm_time(self):
        plat = StarPlatform.from_speeds([1, 1, 1], bandwidths=[1.0, 4.0, 2.0])
        assert bandwidth_order(plat).tolist() == [1, 2, 0]

    def test_heuristic_matches_brute_force(self):
        """The classical optimality of bandwidth ordering, certified."""
        rng = np.random.default_rng(3)
        for _ in range(10):
            p = int(rng.integers(2, 6))
            plat = StarPlatform.from_speeds(
                rng.uniform(0.5, 5.0, p), rng.uniform(0.5, 5.0, p)
            )
            heur = solve_linear_one_port(plat, 100.0, order=bandwidth_order(plat))
            best = brute_force_one_port_order(plat, 100.0)
            assert heur.makespan == pytest.approx(best.makespan, rel=1e-9)


class TestBestOrder:
    def test_small_platform_uses_brute_force(self):
        plat = StarPlatform.from_speeds([1, 2], bandwidths=[1, 3])
        alloc = best_one_port_order(plat, 50.0)
        assert alloc.total == pytest.approx(50.0)

    def test_large_platform_uses_heuristic(self):
        plat = StarPlatform.from_speeds(np.arange(1.0, 13.0))
        alloc = best_one_port_order(plat, 50.0, exhaustive_limit=4)
        assert alloc.order == tuple(bandwidth_order(plat))

    def test_brute_force_guardrail(self):
        plat = StarPlatform.homogeneous(10)
        with pytest.raises(ValueError, match="infeasible"):
            brute_force_one_port_order(plat, 1.0)


class TestOrderGap:
    def test_optimal_order_has_zero_gap(self):
        plat = StarPlatform.from_speeds([1, 2, 3], bandwidths=[3, 2, 1])
        best = best_one_port_order(plat, 100.0)
        assert order_gap(plat, 100.0, best.order) == pytest.approx(0.0, abs=1e-9)

    def test_bad_order_has_positive_gap(self):
        plat = StarPlatform.from_speeds([1, 1], bandwidths=[10.0, 0.1])
        # serving the slow link first wastes port time
        gap = order_gap(plat, 100.0, order=[1, 0])
        assert gap >= 0.0
