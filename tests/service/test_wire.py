"""Tests for the versioned service wire format."""

import pickle

import pytest

from repro.service import wire


class TestEnvelope:
    def test_roundtrip(self):
        payload = {"anything": [1, 2.5, "three"], "nested": (None, True)}
        assert wire.unpack(wire.pack(payload)) == payload

    def test_magic_prefix_present(self):
        assert wire.pack(1).startswith(wire.WIRE_MAGIC)

    def test_rejects_arbitrary_bytes_without_unpickling(self):
        # a pickle bomb without the magic header must fail on the header
        # check alone — Bomb.__reduce__ would raise if it ever ran
        class Bomb:
            def __reduce__(self):
                return (pytest.fail, ("unpickled a non-envelope body!",))

        with pytest.raises(wire.WireError, match="missing"):
            wire.unpack(pickle.dumps(Bomb()))

    def test_rejects_truncated_envelope(self):
        data = wire.pack(["payload"])
        with pytest.raises(wire.WireError, match="undecodable"):
            wire.unpack(data[: len(wire.WIRE_MAGIC) + 4])

    def test_rejects_wrong_format_field(self):
        body = wire.WIRE_MAGIC + pickle.dumps(
            {"format": "something-else", "version": wire.WIRE_VERSION,
             "payload": 1}
        )
        with pytest.raises(wire.WireError, match="bad format"):
            wire.unpack(body)

    def test_rejects_version_mismatch_both_directions(self):
        for version in (wire.WIRE_VERSION - 1, wire.WIRE_VERSION + 1):
            body = wire.WIRE_MAGIC + pickle.dumps(
                {"format": wire.WIRE_FORMAT, "version": version, "payload": 1}
            )
            with pytest.raises(wire.WireError, match="version mismatch"):
                wire.unpack(body)

    def test_rejects_missing_payload(self):
        body = wire.WIRE_MAGIC + pickle.dumps(
            {"format": wire.WIRE_FORMAT, "version": wire.WIRE_VERSION}
        )
        with pytest.raises(wire.WireError, match="no payload"):
            wire.unpack(body)

    def test_none_payload_is_legal(self):
        # /cache/get misses return an envelope whose payload is None
        assert wire.unpack(wire.pack(None)) is None
