"""The cluster front door: one address fanning out to N plan servers.

:class:`ClusterCoordinator` is wire-compatible with a single
:class:`~repro.service.server.PlanServer` — same endpoints, same v1/v2
envelope profiles, same JSON control surface — so every existing
client (``backend="remote:HOST:PORT"``, ``cache="http://HOST:PORT"``,
``repro figure4 --backend remote:...``) scales out by pointing at the
coordinator instead of a worker.  What it adds:

*Dispatch.*  ``/plan_batch`` items are assigned to alive workers by a
pluggable :class:`~repro.cluster.dispatch.DispatchPolicy`.  Vectorised
:class:`~repro.core.vectorize.VectorGroup` items (a whole sweep fused
client-side into one item) are first *sharded* into per-worker
sub-groups — otherwise one worker would plan the entire sweep while
the rest idle.  The vectorise equivalence contract (bit-identical to
rtol=1e-12 regardless of grouping) is exactly what makes sharding
invisible to clients.

*Fault tolerance.*  A shipped sub-batch that hits a transport failure
(:class:`~repro.service.client.PlanServiceUnavailable` — the worker
could not be reached at all) marks that worker dead immediately and
the failed items are re-dispatched to the survivors, up to
``max_reroutes`` rounds.  Planning is pure, so re-planning a rerouted
item on another replica returns the identical result — the
coordinator's answer after a mid-batch worker death is bit-identical
to an undisturbed run.  An *answered* worker error (a 400/500 with a
message) is relayed to the client unchanged: the worker is alive and
retrying elsewhere would mask a real bug.

*Admission + operability.*  The same
:class:`~repro.service.metrics.AdmissionGate` 429/Retry-After
behaviour as a single server, and ``/metrics`` aggregation: the
coordinator serves its own counters plus every worker's, merged
bucket-by-bucket into one cluster-wide histogram.

Worker membership is the :class:`~repro.cluster.pool.WorkerPool`:
seeded at construction, extended by POST ``/workers/register``, kept
honest by pull heartbeats and POST ``/workers/heartbeat``.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.parse
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Hashable, List, Optional, Sequence, Tuple

from repro import obs
from repro.cluster.dispatch import (
    Candidate,
    DispatchPolicy,
    dispatch_from_spec,
    item_digest,
)
from repro.cluster.pool import WorkerPool
from repro.core.pipeline import PlanRequest, PlanResult
from repro.core.vectorize import VectorGroup
from repro.registry import RegistryError
from repro.service import wire
from repro.service.client import (
    PlanServiceError,
    PlanServiceUnavailable,
    ServiceClient,
)
from repro.service.metrics import (
    AccessLog,
    AdmissionGate,
    ServerMetrics,
    merge_metrics,
    prometheus_exposition,
)
from repro.service.server import stats_payload

#: endpoint names the coordinator reports individually in /metrics
_KNOWN_ENDPOINTS = frozenset(
    (
        "/healthz",
        "/metrics",
        "/cluster/status",
        "/cache/stats",
        "/plan",
        "/plan_batch",
        "/cache/get",
        "/cache/put",
        "/cache/clear",
        "/workers/register",
        "/workers/heartbeat",
        "/cluster/shutdown",
    )
)


class NoWorkersError(RuntimeError):
    """No alive worker can take this request (clients see a 503)."""


class _Unit:
    """One dispatchable piece of a ``/plan_batch``: item + reassembly slot.

    ``index`` is the position in the client's item list; for a sharded
    :class:`VectorGroup`, ``offset``/``size`` locate this shard's
    results inside the original group's result list.
    """

    __slots__ = ("item", "index", "offset", "size", "digest", "weight")

    def __init__(
        self, item: Any, index: int, offset: Optional[int] = None
    ) -> None:
        self.item = item
        self.index = index
        self.offset = offset
        self.size = len(item.requests) if isinstance(item, VectorGroup) else 1
        self.digest = item_digest(item)
        #: flat request count, the load unit dispatch balances on
        self.weight = self.size


class _ClusterHandler(BaseHTTPRequestHandler):
    """Routes one connection onto the owning :class:`ClusterCoordinator`."""

    protocol_version = "HTTP/1.1"

    @property
    def coordinator(self) -> "ClusterCoordinator":
        return self.server.coordinator  # type: ignore[attr-defined]

    def log_message(self, format: str, *args: Any) -> None:
        pass

    # -- plumbing (mirrors the plan server's handler) --------------------

    def _body(self) -> bytes:
        length = int(self.headers.get("Content-Length") or 0)
        return self.rfile.read(length) if length else b""

    def _begin(self) -> None:
        self._started = time.perf_counter()
        route, _, query = self.path.partition("?")
        self._route = route
        self._query = urllib.parse.parse_qs(query)
        self._endpoint = route if route in _KNOWN_ENDPOINTS else "other"
        self._profile = "-"
        self._trace = obs.parse_trace_header(
            self.headers.get(obs.TRACE_HEADER)
        )

    def _reply(
        self,
        code: int,
        body: bytes,
        content_type: str,
        extra_headers: Dict[str, str] | None = None,
    ) -> None:
        # observe BEFORE any response byte hits the wire: once a client
        # holds its answer the request must already be visible in
        # /metrics — the loadtest cross-check relies on that
        # happens-before to reconcile client and server counts exactly
        started = getattr(self, "_started", None)
        if started is not None:
            trace = getattr(self, "_trace", None)
            self.coordinator.observe_request(
                getattr(self, "_endpoint", "other"),
                code,
                time.perf_counter() - started,
                profile=getattr(self, "_profile", "-"),
                nbytes=len(body),
                trace=(
                    trace.trace_id
                    if trace is not None and trace.sampled
                    else "-"
                ),
            )
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.send_header(wire.VERSION_HEADER, str(wire.WIRE_VERSION))
        self.send_header(
            wire.PROFILE_HEADER, ",".join(self.coordinator.wire_profiles)
        )
        for name, value in (extra_headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _reply_json(
        self,
        code: int,
        payload: dict,
        extra_headers: Dict[str, str] | None = None,
    ) -> None:
        self._reply(
            code,
            json.dumps(payload, sort_keys=True).encode("utf-8") + b"\n",
            "application/json",
            extra_headers,
        )

    def _request_profile(self, body: bytes) -> str:
        allowed = self.coordinator.wire_profiles
        header = (self.headers.get(wire.PROFILE_HEADER) or "").strip()
        if header:
            profile = header
            if profile not in wire.PROFILES:
                raise wire.WireError(
                    f"unknown wire profile {profile!r}; this coordinator "
                    f"speaks {', '.join(allowed)}"
                )
        elif body:
            profile = wire.detect_profile(body)
        else:
            profile = wire.PROFILE_PICKLE
        if profile not in allowed:
            raise wire.WireError(
                f"wire profile {profile!r} refused: this coordinator runs "
                f"--wire safe and only accepts {', '.join(allowed)}"
            )
        return profile

    def _json_body(self, body: bytes) -> dict:
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ValueError(f"expected a JSON body: {exc}") from None
        if not isinstance(payload, dict):
            raise ValueError(
                f"expected a JSON object, got {type(payload).__name__}"
            )
        return payload

    def _unpack(self, body: bytes, profile: str) -> Any:
        with obs.span("wire_decode", profile=profile, nbytes=len(body)):
            return wire.unpack_any(body, allowed=(profile,))

    def _reply_envelope(self, payload: Any, profile: str) -> None:
        with obs.span("wire_encode", profile=profile):
            body = wire.pack_as(payload, profile)
        self._reply(200, body, wire.CONTENT_TYPE)

    def _reply_admission_full(self) -> None:
        gate = self.coordinator.admission
        self._reply_json(
            429,
            {
                "error": (
                    f"cluster over capacity ({gate.limit} planning "
                    f"request(s) in flight); retry after "
                    f"{gate.retry_after}s"
                ),
                "retry_after": gate.retry_after,
            },
            {"Retry-After": f"{gate.retry_after:g}"},
        )

    def _reply_no_workers(self, exc: Exception) -> None:
        retry_after = self.coordinator.admission.retry_after
        self._reply_json(
            503,
            {"error": str(exc), "retry_after": retry_after},
            {"Retry-After": f"{retry_after:g}"},
        )

    # -- routes ----------------------------------------------------------

    def _metrics_reply(self) -> None:
        """Serve ``/metrics`` as JSON, or the cluster view as Prometheus.

        The JSON payload is the full nested view (coordinator + per
        worker + merged); the Prometheus rendering exposes the merged
        ``cluster`` histogram — the series a scraper alerting on
        cluster-wide latency wants, from one scrape target.
        """
        fmt = (self._query.get("format") or ["json"])[0]
        payload = self.coordinator.metrics_payload()
        if fmt == "prometheus":
            self._reply(
                200,
                prometheus_exposition(payload["cluster"]).encode("utf-8"),
                "text/plain; version=0.0.4; charset=utf-8",
            )
        elif fmt == "json":
            self._reply_json(200, payload)
        else:
            self._reply_json(
                400,
                {"error": f"unknown metrics format {fmt!r}; "
                          "pick 'json' or 'prometheus'"},
            )

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        self._begin()
        try:
            if self._route == "/healthz":
                self._reply_json(200, self.coordinator.health_payload())
            elif self._route == "/metrics":
                self._metrics_reply()
            elif self._route == "/cluster/status":
                self._reply_json(200, self.coordinator.status_payload())
            elif self._route == "/cache/stats":
                self._reply_json(200, self.coordinator.cache_stats())
            else:
                self._reply_json(404, {"error": f"no such endpoint {self.path}"})
        except NoWorkersError as exc:
            self._reply_no_workers(exc)
        except Exception as exc:  # pragma: no cover - defensive
            self._reply_json(500, {"error": str(exc)})

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        self._begin()
        try:
            body = self._body()
            if self._route == "/workers/register":
                info = self.coordinator.pool.register(
                    str(self._json_body(body).get("url", ""))
                )
                self._reply_json(
                    200, {"registered": True, "id": info.id, "url": info.url}
                )
                return
            if self._route == "/workers/heartbeat":
                info = self.coordinator.pool.heartbeat(
                    str(self._json_body(body).get("url", ""))
                )
                self._reply_json(
                    200, {"alive": info.alive, "id": info.id, "url": info.url}
                )
                return
            if self._route == "/cluster/shutdown":
                self._reply_json(200, {"stopping": True})
                self.coordinator.request_shutdown()
                return
            profile = self._request_profile(body)
            self._profile = profile
            # sampled traced requests record a coordinator root span;
            # plan_items picks the active trace up from this thread and
            # forwards child contexts on every worker hop
            with obs.serving(
                self.coordinator.span_recorder,
                self._trace,
                f"coordinator {self._endpoint}",
            ):
                self._route_post(body, profile)
        except (wire.WireError, RegistryError, TypeError, ValueError) as exc:
            self._reply_json(400, {"error": str(exc)})
        except NoWorkersError as exc:
            self._reply_no_workers(exc)
        except PlanServiceError as exc:
            # a worker *answered* with an error; relay it truthfully
            code = exc.code if exc.code and 400 <= exc.code < 600 else 502
            self._reply_json(code, {"error": f"worker error: {exc}"})
        except Exception as exc:
            self._reply_json(500, {"error": f"{type(exc).__name__}: {exc}"})

    def _route_post(self, body: bytes, profile: str) -> None:
        if self._route in ("/plan", "/plan_batch"):
            if not self.coordinator.admission.try_acquire():
                self._reply_admission_full()
                return
            try:
                self._do_plan(body, profile)
            finally:
                self.coordinator.admission.release()
        elif self._route == "/cache/get":
            key = self._unpack(body, profile)
            self._reply_envelope(self.coordinator.cache_get(key), profile)
        elif self._route == "/cache/put":
            key, result = self._unpack(body, profile)
            self.coordinator.cache_put(key, result)
            self._reply_json(200, {"stored": True})
        elif self._route == "/cache/clear":
            self._reply_json(
                200, {"cleared": True, **self.coordinator.cache_clear()}
            )
        else:
            self._reply_json(404, {"error": f"no such endpoint {self.path}"})

    def _do_plan(self, body: bytes, profile: str) -> None:
        if self._route == "/plan":
            request = self._unpack(body, profile)
            if not isinstance(request, PlanRequest):
                raise wire.WireError(
                    f"/plan expects a PlanRequest, got {type(request).__name__}"
                )
            self._reply_envelope(
                self.coordinator.plan_items([request])[0], profile
            )
        else:
            items = self._unpack(body, profile)
            self._reply_envelope(self.coordinator.plan_items(items), profile)


class _ThreadingClusterServer(ThreadingHTTPServer):
    daemon_threads = True
    coordinator: "ClusterCoordinator"


class ClusterCoordinator:
    """HTTP front door for a pool of plan-server replicas.

    ``workers`` seeds the pool (more can register later);
    ``dispatch`` is a policy spec or instance
    (:func:`~repro.cluster.dispatch.dispatch_from_spec`);
    ``max_inflight`` bounds concurrent planning requests cluster-wide
    (429 + Retry-After beyond it); ``heartbeat_interval`` /
    ``max_missed`` tune the pull-heartbeat monitor; ``max_reroutes``
    bounds how many times a failed sub-batch is re-dispatched before
    the client sees a 503.  ``shard_groups=False`` disables
    VectorGroup sharding (one group, one worker — useful to measure
    what sharding buys).

    Use as a context manager or call :meth:`close`; :meth:`start` runs
    the accept loop and the heartbeat monitor on daemon threads.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        workers: Sequence[str] = (),
        dispatch: "str | DispatchPolicy" = "least-loaded",
        wire_mode: str = "auto",
        max_inflight: int | None = None,
        retry_after: float = 0.5,
        heartbeat_interval: float = 1.0,
        max_missed: int = 2,
        max_reroutes: int = 3,
        worker_timeout: float = 60.0,
        shard_groups: bool = True,
        access_log: AccessLog | None = None,
        span_recorder: obs.SpanRecorder | None = None,
    ) -> None:
        if wire_mode not in ("auto", "safe"):
            raise ValueError(
                f"wire_mode must be 'auto' or 'safe', got {wire_mode!r}"
            )
        if max_reroutes < 0:
            raise ValueError(f"max_reroutes must be >= 0, got {max_reroutes}")
        self.wire_mode = wire_mode
        self.wire_profiles: tuple = (
            (wire.PROFILE_BINARY,) if wire_mode == "safe" else wire.PROFILES
        )
        self.pool = WorkerPool(max_missed=max_missed)
        self.dispatch = dispatch_from_spec(dispatch)
        self.metrics = ServerMetrics()
        #: when set, every handled response also appends one access line
        self.access_log = access_log
        #: when set, sampled traced requests record coordinator root +
        #: per-worker dispatch spans here (``repro cluster up --trace``)
        self.span_recorder = span_recorder
        self.admission = AdmissionGate(max_inflight, retry_after)
        self.heartbeat_interval = float(heartbeat_interval)
        self.max_reroutes = int(max_reroutes)
        self.worker_timeout = float(worker_timeout)
        self.shard_groups = bool(shard_groups)
        self._clients: Dict[str, ServiceClient] = {}
        self._clients_lock = threading.Lock()
        for url in workers:
            self.pool.register(url)
        self._http = _ThreadingClusterServer((host, port), _ClusterHandler)
        self._http.coordinator = self
        self.host, self.port = self._http.server_address[:2]
        self._thread: threading.Thread | None = None
        self._closed = False

    # -- handler-facing API -----------------------------------------------

    def observe_request(
        self,
        endpoint: str,
        status: int,
        elapsed_s: float,
        *,
        profile: str = "-",
        nbytes: int = 0,
        trace: str = "-",
    ) -> None:
        """The single exit point every handled response reports through.

        Identical contract to
        :meth:`repro.service.server.PlanServer.observe_request`: feeds
        the front-door histograms and, when enabled, the access log
        from one call site so the two can never disagree.
        """
        self.metrics.observe(endpoint, status, elapsed_s)
        if self.access_log is not None:
            self.access_log.record(
                endpoint, status, elapsed_s,
                wire=profile, nbytes=nbytes, trace=trace,
            )

    # -- worker clients ---------------------------------------------------

    def _client(self, url: str) -> ServiceClient:
        """The cached envelope client for one worker.

        ``retries=1`` with a short wait: one quick transport retry
        absorbs a worker mid-restart, anything worse escalates to the
        reroute path (which has the whole pool to fall back on).
        """
        with self._clients_lock:
            client = self._clients.get(url)
            if client is None:
                client = self._clients[url] = ServiceClient(
                    url,
                    timeout=self.worker_timeout,
                    retries=1,
                    retry_wait=0.1,
                )
            return client

    def _probe(self, url: str) -> bool:
        """One pull-heartbeat: does the worker answer ``/healthz``?"""
        probe = ServiceClient(
            url, timeout=max(1.0, self.heartbeat_interval), retries=0
        )
        try:
            return probe.healthz().get("status") == "ok"
        except Exception:
            return False

    # -- dispatch ---------------------------------------------------------

    def _units(self, items: Sequence[Any]) -> Tuple[List[_Unit], List[Any]]:
        """Validate and cut a ``/plan_batch`` into dispatchable units.

        Returns the units plus a results skeleton: ``None`` per scalar
        slot, a pre-sized list per VectorGroup slot that sharded units
        fill by offset.
        """
        if not isinstance(items, (list, tuple)):
            raise wire.WireError(
                f"/plan_batch expects a list of items, got {type(items).__name__}"
            )
        for item in items:
            if not isinstance(item, (PlanRequest, VectorGroup)):
                raise wire.WireError(
                    "plan_batch items must be PlanRequest or VectorGroup, "
                    f"got {type(item).__name__}"
                )
        n_alive = max(1, len(self.pool.alive()))
        units: List[_Unit] = []
        skeleton: List[Any] = []
        for index, item in enumerate(items):
            if (
                isinstance(item, VectorGroup)
                and self.shard_groups
                and n_alive > 1
                and len(item.requests) > 1
            ):
                requests = item.requests
                shards = min(n_alive, len(requests))
                # ceil-balanced contiguous slices preserve order
                base, extra = divmod(len(requests), shards)
                offset = 0
                for s in range(shards):
                    size = base + (1 if s < extra else 0)
                    shard = VectorGroup(
                        strategy=item.strategy,
                        requests=requests[offset:offset + size],
                    )
                    units.append(_Unit(shard, index, offset))
                    offset += size
                skeleton.append([None] * len(requests))
            else:
                units.append(_Unit(item, index))
                skeleton.append(None)
        return units, skeleton

    def plan_items(self, items: Sequence[Any]) -> List[Any]:
        """Plan a ``/plan_batch`` item list across the worker pool.

        Same in/out contract as
        :meth:`repro.service.server.PlanServer.plan_items` — a
        :class:`PlanResult` per scalar item, a result list per
        :class:`VectorGroup` — so the coordinator is a drop-in server
        to every client.  Dispatch, sharding, and rerouting happen
        here; see the module docstring for the failure semantics.
        """
        units, skeleton = self._units(items)
        if not units:
            return []
        unit_results: List[Any] = [None] * len(units)
        done = [False] * len(units)
        pending = list(range(len(units)))
        # capture the handler thread's ambient trace once: ship() runs
        # on bare dispatch threads where context-locals don't follow,
        # so hops record through the explicit API with the coordinator
        # root span as parent — reroute rounds included, which is what
        # keeps a dead worker's resent units on the original trace id
        active = obs.current()
        for round_no in range(self.max_reroutes + 1):
            if not pending:
                break
            alive = self.pool.alive()
            if not alive:
                raise NoWorkersError(
                    "no alive workers in the pool "
                    f"({len(self.pool.workers())} registered, all dead)"
                )
            candidates = {w.url: Candidate(w.url, w.load) for w in alive}
            pool_view = list(candidates.values())
            assignment: Dict[str, List[int]] = {}
            for uid in pending:
                chosen = self.dispatch.choose(units[uid].digest, pool_view)
                # tentative load so one pass spreads the whole batch
                chosen.load += units[uid].weight
                assignment.setdefault(chosen.url, []).append(uid)
            failed: List[int] = []
            errors: List[Exception] = []
            lock = threading.Lock()

            def ship(
                url: str, uids: List[int], round_no: int = round_no
            ) -> None:
                payload = [units[u].item for u in uids]
                weight = sum(units[u].weight for u in uids)
                self.pool.acquire(url, weight)
                hop_ctx: Optional[obs.TraceContext] = None
                hop_span = None
                if active is not None:
                    # the dispatch span covers ship + worker + wait; the
                    # forwarded child context carries its span id so the
                    # worker's own root span parents to this hop
                    hop_span = active.recorder.span(
                        active.trace_id,
                        "dispatch",
                        parent_id=active.current_span_id,
                        worker=url,
                        items=len(uids),
                        round=round_no,
                    )
                    span = hop_span.__enter__()
                    hop_ctx = obs.TraceContext(
                        trace_id=active.trace_id,
                        span_id=span.span_id,
                        sampled=True,
                    )
                    span.meta["outcome"] = "ok"
                try:
                    outputs = self._client(url).plan_items(
                        payload, trace=hop_ctx
                    )
                    with lock:
                        for u, out in zip(uids, outputs):
                            unit_results[u] = out
                            done[u] = True
                except PlanServiceUnavailable as exc:
                    if hop_span is not None:
                        span.meta["outcome"] = "unreachable"
                    self.pool.mark_dead(url, f"unreachable: {exc}")
                    with lock:
                        failed.extend(uids)
                except Exception as exc:
                    if hop_span is not None:
                        span.meta["outcome"] = "error"
                    with lock:
                        errors.append(exc)
                finally:
                    if hop_span is not None:
                        # the span records on exit, failures included —
                        # a chaos-killed worker still leaves its hop
                        hop_span.__exit__(None, None, None)
                    self.pool.release(url, weight)

            if len(assignment) == 1:
                url, uids = next(iter(assignment.items()))
                ship(url, uids)
            else:
                threads = [
                    threading.Thread(
                        target=ship, args=(url, uids), daemon=True
                    )
                    for url, uids in assignment.items()
                ]
                for t in threads:
                    t.start()
                for t in threads:
                    t.join()
            if errors:
                raise errors[0]
            pending = failed
        if pending:
            raise NoWorkersError(
                f"{len(pending)} batch item(s) still unplaced after "
                f"{self.max_reroutes + 1} dispatch round(s); "
                "workers keep dying faster than they rejoin"
            )
        # reassemble: shards fill their group's slots by offset
        with obs.span("reassemble", units=len(units)):
            for uid, unit in enumerate(units):
                out = unit_results[uid]
                if unit.offset is None:
                    skeleton[unit.index] = out
                else:
                    skeleton[unit.index][
                        unit.offset:unit.offset + unit.size
                    ] = out
        return skeleton

    # -- cache proxying ---------------------------------------------------

    def _route_cache(self, key: Hashable, call) -> Any:
        """Run one cache op on the worker owning ``key``, with reroute.

        The same digest routes ``/plan`` and ``/cache/*`` (see
        :func:`~repro.cluster.dispatch.item_digest`), so under
        ``consistent-hash`` an entry is looked up on the worker that
        planned it.
        """
        digest = item_digest(key)
        for _ in range(self.max_reroutes + 1):
            alive = self.pool.alive()
            if not alive:
                raise NoWorkersError("no alive workers for cache request")
            chosen = self.dispatch.choose(
                digest, [Candidate(w.url, w.load) for w in alive]
            )
            try:
                return call(self._client(chosen.url))
            except PlanServiceUnavailable as exc:
                self.pool.mark_dead(chosen.url, f"unreachable: {exc}")
        raise NoWorkersError(
            f"cache request unplaced after {self.max_reroutes + 1} round(s)"
        )

    def cache_get(self, key: Hashable) -> Optional[PlanResult]:
        return self._route_cache(key, lambda c: c.cache_get(key))

    def cache_put(self, key: Hashable, result: PlanResult) -> None:
        self._route_cache(key, lambda c: c.cache_put(key, result))

    def cache_clear(self) -> Dict[str, int]:
        """Clear every alive worker's store; report how many answered."""
        cleared = 0
        alive = self.pool.alive()
        if not alive:
            raise NoWorkersError("no alive workers to clear")
        for worker in alive:
            try:
                self._client(worker.url).cache_clear()
                cleared += 1
            except PlanServiceUnavailable as exc:
                self.pool.mark_dead(worker.url, f"unreachable: {exc}")
        return {"workers_cleared": cleared}

    def cache_stats(self) -> dict:
        """Aggregate ``/cache/stats`` across workers.

        The summed view keeps the single-server payload shape (clients
        like :class:`~repro.service.client.HTTPPlanCache` parse it
        unchanged) and adds a per-worker breakdown under ``workers``.
        """
        per_worker: Dict[str, dict] = {}
        for worker in self.pool.alive():
            try:
                per_worker[worker.url] = self._client(worker.url).cache_stats()
            except PlanServiceUnavailable as exc:
                self.pool.mark_dead(worker.url, f"unreachable: {exc}")
        live = {
            url: payload
            for url, payload in per_worker.items()
            if payload.get("cache") == "on"
        }
        if not live:
            return {"cache": "off", "workers": per_worker}
        totals = {
            "cache": "on",
            "hits": 0,
            "misses": 0,
            "entries": 0,
            "max_entries": 0,
            "evictions": 0,
            "tier_hits": {},
        }
        for payload in live.values():
            for field in ("hits", "misses", "entries", "max_entries", "evictions"):
                totals[field] += int(payload.get(field, 0))
            for tier, hits in payload.get("tier_hits", {}).items():
                totals["tier_hits"][tier] = (
                    totals["tier_hits"].get(tier, 0) + int(hits)
                )
        lookups = totals["hits"] + totals["misses"]
        totals["lookups"] = lookups
        totals["hit_rate"] = totals["hits"] / lookups if lookups else 0.0
        totals["workers"] = per_worker
        return totals

    # -- control-plane payloads -------------------------------------------

    def health_payload(self) -> dict:
        from repro import __version__

        snapshot = self.pool.snapshot()
        return {
            "status": "ok",
            "role": "coordinator",
            "service": wire.WIRE_FORMAT,
            "wire_version": wire.WIRE_VERSION,
            "wire_profiles": list(self.wire_profiles),
            "wire_mode": self.wire_mode,
            "version": __version__,
            "dispatch": self.dispatch.name,
            "workers_alive": snapshot["alive"],
            "workers_total": snapshot["total"],
            "max_inflight": self.admission.limit,
        }

    def status_payload(self) -> dict:
        return {
            "role": "coordinator",
            "url": self.url,
            "dispatch": self.dispatch.name,
            "shard_groups": self.shard_groups,
            "max_reroutes": self.max_reroutes,
            "heartbeat_interval": self.heartbeat_interval,
            "admission": {
                "limit": self.admission.limit,
                "inflight": self.admission.inflight,
                "retry_after": self.admission.retry_after,
            },
            "pool": self.pool.snapshot(),
        }

    def metrics_payload(self) -> dict:
        """Own counters + per-worker payloads + the cluster-wide merge."""
        per_worker: Dict[str, dict] = {}
        mergeable: List[dict] = []
        for worker in self.pool.workers():
            try:
                payload = self._client(worker.url).get_json("/metrics")
                per_worker[worker.url] = payload
                mergeable.append(payload)
            except PlanServiceError as exc:
                per_worker[worker.url] = {"unreachable": str(exc)}
        return {
            "role": "coordinator",
            "coordinator": self.metrics.payload(),
            "workers": per_worker,
            "cluster": merge_metrics(mergeable),
        }

    # -- lifecycle --------------------------------------------------------

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "ClusterCoordinator":
        """Serve + heartbeat on daemon threads and return immediately."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._http.serve_forever,
                name="repro-cluster-coordinator",
                daemon=True,
            )
            self._thread.start()
            self.pool.start_monitor(self._probe, self.heartbeat_interval)
        return self

    def serve_forever(self) -> None:
        """Serve in the calling thread until :meth:`close` / interrupt."""
        self.pool.start_monitor(self._probe, self.heartbeat_interval)
        self._http.serve_forever()

    def join(self, timeout: float | None = None) -> None:
        """Block until the accept loop stops (the CLI's foreground wait)."""
        if self._thread is not None:
            self._thread.join(timeout)

    def request_shutdown(self) -> None:
        """Stop serving soon, from a handler thread (``/cluster/shutdown``)."""
        threading.Thread(target=self.close, daemon=True).start()

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self.pool.stop_monitor()
        self._http.shutdown()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None
        self._http.server_close()
        if self.access_log is not None:
            self.access_log.close()
        if self.span_recorder is not None:
            self.span_recorder.close()

    def __enter__(self) -> "ClusterCoordinator":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        snapshot = self.pool.snapshot()
        return (
            f"<ClusterCoordinator {self.url} dispatch={self.dispatch.name!r} "
            f"workers={snapshot['alive']}/{snapshot['total']}>"
        )
