#!/usr/bin/env python3
"""CI smoke for cluster mode: up -n 3 → both wires → kill → reroute.

Boots ``repro cluster up -n 3`` on an ephemeral port, then asserts the
whole operability story end to end, from outside the process:

1. the coordinator fronts the pool — ``/healthz`` reports 3 alive
   workers and both wire profiles;
2. the same Figure-4 panel rendered through the coordinator is
   identical over ``REPRO_WIRE=pickle-v1`` and ``binary-v2`` (the
   front door speaks both wire profiles transparently);
3. SIGKILL-ing one worker (pid from the state file) is invisible to
   the next client — the panel still renders identically, and
   ``/cluster/status`` settles at 2 alive workers;
4. ``/metrics`` aggregates: the coordinator observed every
   ``/plan_batch`` and the cluster-wide merge carries the workers'
   counts;
5. ``repro cluster down`` stops everything: the ``up`` process exits,
   the state file is gone, the worker pids are dead.

Exits non-zero on any failure; prints a BENCH-style JSON line so CI
logs are grep-able.

Run: ``python scripts/cluster_smoke.py``
"""

from __future__ import annotations

import json
import os
import re
import signal
import subprocess
import sys
import tempfile
import time
import urllib.request
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
BANNER_RE = re.compile(r"cluster coordinator listening on (http://\S+)")
PANEL_ARGS = [
    "figure4",
    "--model",
    "uniform",
    "--processors",
    "10",
    "--trials",
    "3",
    "--no-cache",  # clients stay cold; sharing happens cluster-side
]


def client_env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = (
        str(REPO_ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    )
    return env


def run_cli(args: list[str], wire_profile: str | None = None) -> str:
    env = client_env()
    if wire_profile:
        env["REPRO_WIRE"] = wire_profile
    proc = subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True,
        text=True,
        env=env,
        timeout=300,
    )
    if proc.returncode != 0:
        raise SystemExit(
            f"client command {args} failed ({proc.returncode}):\n"
            f"{proc.stdout}\n{proc.stderr}"
        )
    return proc.stdout


def get_json(url: str) -> dict:
    return json.loads(urllib.request.urlopen(url, timeout=10).read())


def pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except OSError:
        return False
    return True


def wait_for(predicate, timeout_s: float, what: str):
    deadline = time.time() + timeout_s
    while time.time() < deadline:
        value = predicate()
        if value:
            return value
        time.sleep(0.1)
    raise SystemExit(f"timed out after {timeout_s}s waiting for {what}")


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="repro-cluster-smoke-") as tmp:
        state_path = Path(tmp) / "cluster.json"
        up = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "cluster",
                "up",
                "-n",
                "3",
                "--port",
                "0",
                "--state",
                str(state_path),
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=client_env(),
        )
        try:
            url = None
            deadline = time.time() + 60
            while time.time() < deadline:
                line = up.stdout.readline()
                if not line:
                    raise SystemExit(
                        f"cluster up exited ({up.poll()}) before its banner"
                    )
                match = BANNER_RE.search(line)
                if match:
                    url = match.group(1)
                    break
            if url is None:
                raise SystemExit("no coordinator banner within 60s")
            address = url.removeprefix("http://")

            # 1. front door fronts a live pool and speaks both wires
            health = get_json(f"{url}/healthz")
            assert health["role"] == "coordinator", health
            assert health["workers_alive"] == 3, health
            assert health["wire_profiles"] == ["binary-v2", "pickle-v1"], (
                f"coordinator must advertise both wire profiles: {health}"
            )
            state = json.loads(state_path.read_text())
            assert len(state["workers"]) == 3, state

            # 2. same panel through both wire profiles
            remote = PANEL_ARGS + ["--backend", f"remote:{address}"]
            panel_pickle = run_cli(remote, wire_profile="pickle-v1")
            panel_binary = run_cli(remote, wire_profile="binary-v2")
            assert panel_pickle == panel_binary, (
                "panels differ between wire profiles"
            )

            # 3. SIGKILL one worker; the next client must not notice
            # (the dead child lingers as a zombie of the `up` process
            # until teardown reaps it, so no pid-liveness wait here —
            # the /cluster/status settle below proves the kill landed)
            victim = state["workers"][0]["pid"]
            os.kill(victim, signal.SIGKILL)
            panel_after_kill = run_cli(remote, wire_profile="binary-v2")
            assert panel_after_kill == panel_binary, (
                "panel changed after a worker was killed"
            )
            alive = wait_for(
                lambda: get_json(f"{url}/cluster/status")["pool"]["alive"] == 2,
                15,
                "the pool to settle at 2 alive workers",
            )
            assert alive, "pool never reported the killed worker dead"

            # 4. metrics aggregate across the survivors
            metrics = get_json(f"{url}/metrics")
            coord_batches = metrics["coordinator"]["endpoints"]["/plan_batch"]
            assert coord_batches["count"] >= 3, metrics["coordinator"]
            cluster_batches = metrics["cluster"]["endpoints"]["/plan_batch"]
            assert cluster_batches["count"] >= 3, metrics["cluster"]
            assert cluster_batches["errors"] == 0, metrics["cluster"]

            # 5. down stops everything and cleans up
            down = subprocess.run(
                [
                    sys.executable,
                    "-m",
                    "repro",
                    "cluster",
                    "down",
                    "--state",
                    str(state_path),
                ],
                capture_output=True,
                text=True,
                env=client_env(),
                timeout=60,
            )
            if down.returncode != 0:
                raise SystemExit(
                    f"cluster down failed ({down.returncode}):\n"
                    f"{down.stdout}\n{down.stderr}"
                )
            wait_for(
                lambda: up.poll() is not None, 15, "cluster up to exit"
            )
            assert not state_path.exists(), "state file survived down"
            for worker in state["workers"]:
                assert not pid_alive(worker["pid"]), (
                    f"worker pid {worker['pid']} survived down"
                )

            print(
                "BENCH "
                + json.dumps(
                    {
                        "name": "cluster_smoke",
                        "workers": 3,
                        "alive_after_kill": 2,
                        "coordinator_plan_batches": coord_batches["count"],
                        "cluster_plan_batches": cluster_batches["count"],
                    }
                )
            )
            print("cluster smoke OK")
            return 0
        finally:
            if up.poll() is None:
                up.terminate()
                try:
                    up.wait(timeout=10)
                except subprocess.TimeoutExpired:
                    up.kill()
                    up.wait()
            time.sleep(0.1)


if __name__ == "__main__":
    sys.exit(main())
