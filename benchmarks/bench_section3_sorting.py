"""Benchmarks regenerating the §3 tables: experiments E3–E5.

* E3: the residue table ``log p / log N``;
* E4: Theorem-B.4 max-bucket statistics at the paper's oversampling;
* E5: executed sample sorts on homogeneous and heterogeneous stars.
"""

import numpy as np
import pytest

from repro.experiments.section3 import run_section3
from repro.platform.star import StarPlatform
from repro.sorting.analysis import max_bucket_statistics
from repro.sorting.sample_sort import sample_sort


def test_section3_tables(benchmark):
    result = benchmark.pedantic(
        run_section3,
        kwargs={"exec_N": 200_000, "exec_ps": (4, 16)},
        iterations=1,
        rounds=1,
    )
    print()
    print(result.render())
    # E3 shape: residue falls in N, rises in p
    rows = {(r.N, r.p): r.residual_fraction for r in result.residue_rows}
    assert rows[(2**22, 4)] < rows[(2**10, 4)]
    assert rows[(2**10, 256)] > rows[(2**10, 4)]
    # E5: every executed sort is correct
    assert all(r.sorted_ok for r in result.execution_rows)


def test_theorem_b4_statistics(benchmark):
    """E4: MaxSize <= (N/p)(1 + (1/ln N)^{1/3}) w.h.p. at s = log²N."""
    stats = benchmark.pedantic(
        max_bucket_statistics,
        kwargs={"N": 100_000, "p": 16, "trials": 30, "rng": 0},
        iterations=1,
        rounds=1,
    )
    print()
    print(
        f"MaxSize over {stats.trials} trials: mean={stats.mean_max:.0f}, "
        f"worst={stats.worst_max}, bound={stats.b4_bound:.0f}, "
        f"violation rate={stats.violation_rate:.2%}"
    )
    assert stats.violation_rate <= 0.2
    assert stats.mean_overflow < 0.2


def test_sample_sort_execution_speed(benchmark):
    """Microbenchmark: the full pipeline on 10^5 keys, 8 workers."""
    keys = np.random.default_rng(0).random(100_000)
    plat = StarPlatform.homogeneous(8)
    res = benchmark(sample_sort, keys, plat, None, 1)
    assert np.array_equal(res.sorted_keys, np.sort(keys))


def test_heterogeneous_sample_sort_balance(benchmark):
    """E5: speed-proportional buckets balance step 3 (§3.2)."""
    keys = np.random.default_rng(1).random(300_000)
    plat = StarPlatform.from_speeds([1.0, 2.0, 4.0, 8.0])
    res = benchmark.pedantic(
        sample_sort, args=(keys, plat), kwargs={"rng": 2}, iterations=1, rounds=1
    )
    print()
    print(
        "bucket fractions:",
        np.round(res.bucket_sizes / keys.size, 4),
        "target:",
        np.round(plat.normalized_speeds, 4),
    )
    t = res.local_sort_times
    assert (t.max() - t.min()) / t.max() < 0.3
    assert np.array_equal(res.sorted_keys, np.sort(keys))
