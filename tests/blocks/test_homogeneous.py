"""Tests for repro.blocks.homogeneous — the Comm_hom strategy."""

import numpy as np
import pytest

from repro.blocks.homogeneous import HomogeneousBlocksStrategy
from repro.core.bounds import comm_hom_ideal, lower_bound_comm
from repro.platform.star import StarPlatform


class TestBlockGeometry:
    def test_block_side_formula(self):
        """D = sqrt(x1) N."""
        plat = StarPlatform.from_speeds([1.0, 3.0])
        side = HomogeneousBlocksStrategy().block_side(plat, 100.0)
        assert side == pytest.approx(np.sqrt(0.25) * 100.0)

    def test_subdivision_shrinks_side(self):
        plat = StarPlatform.from_speeds([1.0, 3.0])
        d1 = HomogeneousBlocksStrategy(1).block_side(plat, 100.0)
        d4 = HomogeneousBlocksStrategy(4).block_side(plat, 100.0)
        assert d4 == pytest.approx(d1 / 4)

    def test_n_blocks_one_per_slowest_share(self):
        """B = 1/x1 when integral: speeds [1,1,2] → x1=1/4 → 4 blocks."""
        plat = StarPlatform.from_speeds([1.0, 1.0, 2.0])
        assert HomogeneousBlocksStrategy().n_blocks(plat, 100.0) == 4

    def test_subdivision_validated(self):
        with pytest.raises(ValueError):
            HomogeneousBlocksStrategy(0)


class TestPlan:
    def test_homogeneous_platform_hits_lower_bound(self):
        """Figure 4a: one square per worker, ratio exactly 1."""
        plat = StarPlatform.homogeneous(25)
        plan = HomogeneousBlocksStrategy().plan(plat, 1000.0)
        assert plan.ratio_to_lower_bound == pytest.approx(1.0)
        assert plan.imbalance == pytest.approx(0.0, abs=1e-12)

    def test_comm_volume_matches_ideal_when_integral(self):
        plat = StarPlatform.from_speeds([1.0, 1.0, 2.0])
        plan = HomogeneousBlocksStrategy().plan(plat, 100.0)
        assert plan.comm_volume == pytest.approx(comm_hom_ideal(100.0, plat.speeds))

    def test_counts_proportional_to_speed(self):
        plat = StarPlatform.from_speeds([1.0, 4.0])
        plan = HomogeneousBlocksStrategy().plan(plat, 1000.0)
        counts = plan.detail["counts"]
        assert counts.sum() == plan.detail["n_blocks"]
        assert counts[1] == pytest.approx(4 * counts[0], abs=1)

    def test_heterogeneous_ratio_above_one(self):
        plat = StarPlatform.from_speeds([1.0, 10.0, 100.0])
        plan = HomogeneousBlocksStrategy().plan(plat, 1000.0)
        assert plan.ratio_to_lower_bound > 1.5

    def test_fast_path_consistent_with_heap(self):
        """Same plan either side of the fast-path threshold."""
        plat = StarPlatform.from_speeds([1.0, 2.0, 3.0])
        strat = HomogeneousBlocksStrategy()
        plan_heap = strat.plan(plat, 50.0)
        # force fast path by monkeying the threshold
        strat_fast = HomogeneousBlocksStrategy()
        object.__setattr__(strat_fast, "_FAST_PATH_THRESHOLD", 0)
        plan_fast = strat_fast.plan(plat, 50.0)
        assert plan_fast.comm_volume == pytest.approx(plan_heap.comm_volume)
        assert np.allclose(
            np.sort(plan_fast.finish_times), np.sort(plan_heap.finish_times)
        )

    def test_ideal_volume_static(self):
        plat = StarPlatform.from_speeds([2.0, 8.0])
        assert HomogeneousBlocksStrategy.ideal_volume(plat, 10.0) == pytest.approx(
            comm_hom_ideal(10.0, plat.speeds)
        )

    def test_volume_grows_linearly_in_subdivision(self):
        plat = StarPlatform.from_speeds([1.0, 3.0])
        v1 = HomogeneousBlocksStrategy(1).plan(plat, 400.0).comm_volume
        v2 = HomogeneousBlocksStrategy(2).plan(plat, 400.0).comm_volume
        assert v2 == pytest.approx(2 * v1, rel=0.01)

    def test_strategy_label(self):
        plat = StarPlatform.homogeneous(4)
        assert HomogeneousBlocksStrategy(1).plan(plat, 100.0).strategy == "hom"
        assert "k=3" in HomogeneousBlocksStrategy(3).plan(plat, 100.0).strategy
