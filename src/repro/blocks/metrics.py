"""Shared result type, metrics and batch helpers for the §4 strategies."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.bounds import lower_bound_comm
from repro.util.validation import check_positive


def validate_batch(platforms: Sequence, Ns: Sequence[float]) -> None:
    """Reject mismatched or non-positive batched ``plan_batch`` inputs."""
    if len(platforms) != len(Ns):
        raise ValueError(f"{len(platforms)} platforms but {len(Ns)} Ns")
    for N in Ns:
        check_positive(float(N), "N")


def batch_platform_groups(
    platforms: Sequence, Ns: Sequence[float]
) -> Dict[str, List[int]]:
    """Validate a batch and group request indices by platform content.

    Content-identical platforms (matching ``fingerprint()``) share one
    group, which is the unit the vectorised strategy kernels amortise
    over — one partitioner run / demand-driven schedule per group.
    """
    validate_batch(platforms, Ns)
    groups: Dict[str, List[int]] = {}
    for i, platform in enumerate(platforms):
        groups.setdefault(platform.fingerprint(), []).append(i)
    return groups


def load_imbalance(finish_times: np.ndarray) -> float:
    """The paper's :math:`e = (t_{max} - t_{min}) / t_{min}` (§4.3).

    ``inf`` when some worker is completely idle (t = 0) while another
    works — the refinement loop treats that as maximally imbalanced.
    """
    t = np.asarray(finish_times, dtype=float)
    if t.size <= 1:
        return 0.0
    tmin, tmax = float(t.min()), float(t.max())
    if tmin == 0.0:
        return float("inf") if tmax > 0 else 0.0
    return (tmax - tmin) / tmin


@dataclass(frozen=True)
class StrategyResult:
    """Outcome of planning one outer-product distribution."""

    strategy: str
    N: float
    speeds: np.ndarray
    #: total communication volume (data units shipped by the master)
    comm_volume: float
    #: per-worker compute finish times under the plan
    finish_times: np.ndarray
    #: e = (tmax - tmin)/tmin
    imbalance: float
    #: strategy-specific detail (block side, k, partition, ...)
    detail: dict = field(default_factory=dict, compare=False)

    @property
    def lower_bound(self) -> float:
        """:math:`2N\\sum\\sqrt{x_i}` for this instance."""
        return lower_bound_comm(self.N, self.speeds)

    @property
    def ratio_to_lower_bound(self) -> float:
        """Figure 4's y-axis value for this strategy/instance."""
        return self.comm_volume / self.lower_bound

    @property
    def makespan(self) -> float:
        return float(np.max(self.finish_times))

    def summary(self) -> str:
        return (
            f"{self.strategy}: comm={self.comm_volume:.6g} "
            f"({self.ratio_to_lower_bound:.4f}x LB), "
            f"imbalance e={self.imbalance:.4g}"
        )
