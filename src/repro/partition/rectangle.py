"""Rectangle and partition geometry with exactness validation."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Sequence

import numpy as np

_ATOL = 1e-9


@dataclass(frozen=True)
class Rectangle:
    """An axis-aligned rectangle ``[x, x+w] × [y, y+h]``.

    ``owner`` links a rectangle back to the processor index whose area
    requirement it satisfies.
    """

    x: float
    y: float
    w: float
    h: float
    owner: int = field(default=-1, compare=False)

    def __post_init__(self) -> None:
        if self.w < 0 or self.h < 0:
            raise ValueError(f"negative extent: w={self.w}, h={self.h}")

    @property
    def area(self) -> float:
        return self.w * self.h

    @property
    def half_perimeter(self) -> float:
        """:math:`w + h` — the outer-product communication cost of the
        rectangle (the ``k + l`` of §4.1.2)."""
        return self.w + self.h

    @property
    def x2(self) -> float:
        return self.x + self.w

    @property
    def y2(self) -> float:
        return self.y + self.h

    def contains_point(self, px: float, py: float, atol: float = _ATOL) -> bool:
        return (
            self.x - atol <= px <= self.x2 + atol
            and self.y - atol <= py <= self.y2 + atol
        )

    def overlaps(self, other: "Rectangle", atol: float = _ATOL) -> bool:
        """Positive-area intersection (shared edges don't count)."""
        ix = min(self.x2, other.x2) - max(self.x, other.x)
        iy = min(self.y2, other.y2) - max(self.y, other.y)
        return ix > atol and iy > atol

    def scaled(self, factor: float) -> "Rectangle":
        """Scale the unit-square geometry to an ``N × N`` domain."""
        if factor <= 0:
            raise ValueError(f"scale factor must be positive, got {factor}")
        return Rectangle(
            x=self.x * factor,
            y=self.y * factor,
            w=self.w * factor,
            h=self.h * factor,
            owner=self.owner,
        )

    def row_range(self, n: int) -> tuple[int, int]:
        """Integer row interval covered when the unit square maps to an
        ``n × n`` grid: ``[floor(y*n), ceil(y2*n))`` clipped to ``n``."""
        lo = int(np.floor(self.y * n + _ATOL))
        hi = int(np.ceil(self.y2 * n - _ATOL))
        return max(0, lo), min(n, hi)

    def col_range(self, n: int) -> tuple[int, int]:
        """Integer column interval, analogous to :meth:`row_range`."""
        lo = int(np.floor(self.x * n + _ATOL))
        hi = int(np.ceil(self.x2 * n - _ATOL))
        return max(0, lo), min(n, hi)


@dataclass(frozen=True)
class Partition:
    """A set of rectangles tiling a ``side × side`` square domain."""

    rectangles: tuple[Rectangle, ...]
    side: float = 1.0

    def __post_init__(self) -> None:
        object.__setattr__(self, "rectangles", tuple(self.rectangles))
        if self.side <= 0:
            raise ValueError(f"side must be positive, got {self.side}")

    def __len__(self) -> int:
        return len(self.rectangles)

    def __iter__(self):
        return iter(self.rectangles)

    def __getitem__(self, i: int) -> Rectangle:
        return self.rectangles[i]

    @property
    def areas(self) -> np.ndarray:
        return np.array([r.area for r in self.rectangles])

    @property
    def sum_half_perimeters(self) -> float:
        """The PERI-SUM objective :math:`\\hat C = \\sum_i (w_i + h_i)`."""
        return float(sum(r.half_perimeter for r in self.rectangles))

    @property
    def max_half_perimeter(self) -> float:
        """The PERI-MAX objective :math:`\\max_i (w_i + h_i)`."""
        return float(max(r.half_perimeter for r in self.rectangles))

    def by_owner(self) -> dict[int, Rectangle]:
        """Map owner (processor index) → rectangle."""
        out = {}
        for r in self.rectangles:
            if r.owner in out:
                raise ValueError(f"duplicate owner {r.owner}")
            out[r.owner] = r
        return out

    def scaled(self, factor: float) -> "Partition":
        """Scale to an ``(side*factor)``-sized domain (e.g. ``N × N``)."""
        return Partition(
            tuple(r.scaled(factor) for r in self.rectangles),
            side=self.side * factor,
        )

    def validate(
        self,
        expected_areas: Sequence[float] | None = None,
        atol: float = 1e-7,
    ) -> None:
        """Assert the partition is exact: raises ``ValueError`` if not.

        Checks: rectangles inside the domain, pairwise interior-disjoint,
        total area equals the domain, and (optionally) each rectangle's
        area matches ``expected_areas`` by owner index.
        """
        total_area = self.side * self.side
        for r in self.rectangles:
            if (
                r.x < -atol
                or r.y < -atol
                or r.x2 > self.side + atol
                or r.y2 > self.side + atol
            ):
                raise ValueError(f"rectangle {r} exceeds the domain")
        # Pairwise overlap is O(p^2) but p <= a few hundred here.
        rects = self.rectangles
        for i in range(len(rects)):
            for j in range(i + 1, len(rects)):
                if rects[i].overlaps(rects[j], atol=atol):
                    raise ValueError(
                        f"rectangles {i} and {j} overlap: "
                        f"{rects[i]} vs {rects[j]}"
                    )
        covered = float(self.areas.sum())
        if abs(covered - total_area) > atol * max(1.0, total_area):
            raise ValueError(
                f"partition covers area {covered}, expected {total_area}"
            )
        if expected_areas is not None:
            expected = np.asarray(expected_areas, dtype=float)
            got = np.empty_like(expected)
            for r in self.rectangles:
                if not 0 <= r.owner < expected.size:
                    raise ValueError(f"owner {r.owner} out of range")
                got[r.owner] = r.area
            if not np.allclose(got, expected, atol=atol, rtol=1e-6):
                raise ValueError(
                    f"areas {got} do not match prescription {expected}"
                )


def stack_column(
    x: float, width: float, areas: Iterable[float], owners: Iterable[int],
    side: float = 1.0,
) -> List[Rectangle]:
    """Stack rectangles of the given areas into one full-height column.

    Column spans ``[x, x+width] × [0, side]``; each rectangle has the
    column's width and height ``area/width``.  Heights are normalised so
    they exactly fill the column (guards against float drift).
    """
    areas = list(areas)
    owners = list(owners)
    if len(areas) != len(owners):
        raise ValueError("areas and owners must have equal length")
    if width <= 0:
        raise ValueError(f"column width must be positive, got {width}")
    heights = np.array(areas, dtype=float) / width
    total = float(heights.sum())
    if total <= 0:
        raise ValueError("column must have positive total area")
    heights *= side / total
    rects = []
    y = 0.0
    for h, owner in zip(heights, owners):
        rects.append(Rectangle(x=x, y=y, w=width, h=float(h), owner=owner))
        y += float(h)
    # Snap the last rectangle to the domain edge.
    last = rects[-1]
    rects[-1] = Rectangle(
        x=last.x, y=last.y, w=last.w, h=side - last.y, owner=last.owner
    )
    return rects
