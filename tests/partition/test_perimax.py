"""Tests for repro.partition.perimax."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.partition.lower_bound import peri_max_lower_bound
from repro.partition.naive import strip_partition
from repro.partition.perimax import peri_max_partition

areas_lists = st.lists(
    st.floats(min_value=1e-3, max_value=1.0), min_size=1, max_size=16
).map(lambda v: (np.asarray(v) / np.sum(v)))


class TestPeriMax:
    @given(areas=areas_lists)
    @settings(max_examples=50, deadline=None)
    def test_partition_is_exact(self, areas):
        peri_max_partition(areas).validate(expected_areas=areas)

    @given(areas=areas_lists)
    @settings(max_examples=50, deadline=None)
    def test_respects_lower_bound(self, areas):
        part = peri_max_partition(areas)
        assert part.max_half_perimeter >= peri_max_lower_bound(areas) - 1e-9

    @given(areas=areas_lists)
    @settings(max_examples=50, deadline=None)
    def test_no_worse_than_strip(self, areas):
        """The heuristic must dominate the trivial 1-column layout."""
        part = peri_max_partition(areas)
        strip = strip_partition(areas)
        assert part.max_half_perimeter <= strip.max_half_perimeter + 1e-9

    def test_equal_areas_grid(self):
        part = peri_max_partition([0.25] * 4)
        assert part.max_half_perimeter == pytest.approx(1.0)

    def test_single_area(self):
        part = peri_max_partition([1.0])
        assert part.max_half_perimeter == pytest.approx(2.0)

    def test_distinct_from_peri_sum_objective(self):
        """PERI-MAX never has a larger max half-perimeter than the
        PERI-SUM partition of the same areas (on these instances)."""
        from repro.partition.column_based import peri_sum_partition

        rng = np.random.default_rng(4)
        for _ in range(10):
            areas = rng.dirichlet(np.ones(8))
            pmax = peri_max_partition(areas).max_half_perimeter
            psum = peri_sum_partition(areas).max_half_perimeter
            assert pmax <= psum + 1e-9
