"""Tests for PlannerSession: backend routing, plan cache, batching."""

import pytest

from repro import registry
from repro.core.cache import PlanCache, plan_cache_key
from repro.core.pipeline import PlanRequest, PlanResult, PlanSweep
from repro.core.session import (
    PlannerSession,
    default_session,
    reset_default_session,
)
from repro.platform.star import StarPlatform

ALL_STRATEGIES = ("het", "hom", "hom/k")


@pytest.fixture
def session():
    with PlannerSession() as s:
        yield s


class TestPlan:
    def test_plan_single_request(self, session, heterogeneous_platform):
        result = session.plan(
            PlanRequest(platform=heterogeneous_platform, N=1000.0, strategy="het")
        )
        assert isinstance(result, PlanResult)
        assert result.strategy == "het"
        assert result.comm_volume > 0
        assert not result.cached

    def test_unknown_strategy_fails_fast(self, session, heterogeneous_platform):
        with pytest.raises(ValueError, match="unknown strategy 'nope'"):
            session.plan(
                PlanRequest(
                    platform=heterogeneous_platform, N=100.0, strategy="nope"
                )
            )

    def test_default_params_merge_under_request(self, heterogeneous_platform):
        with PlannerSession(imbalance_target=0.5) as session:
            loose = session.plan(
                PlanRequest(
                    platform=heterogeneous_platform, N=1000.0, strategy="hom/k"
                )
            )
            # the request's own params win over the session default
            tight = session.plan(
                PlanRequest(
                    platform=heterogeneous_platform,
                    N=1000.0,
                    strategy="hom/k",
                    params={"imbalance_target": 0.01},
                )
            )
        assert loose.plan.detail["subdivision"] <= tight.plan.detail["subdivision"]


class TestPlanBatch:
    def test_results_align_with_requests(self, session, heterogeneous_platform):
        requests = [
            PlanRequest(platform=heterogeneous_platform, N=1000.0, strategy=name)
            for name in ("hom", "het", "hom", "hom/k")
        ]
        results = session.plan_batch(requests)
        assert [r.strategy for r in results] == ["hom", "het", "hom", "hom/k"]

    def test_empty_batch(self, session):
        assert session.plan_batch([]) == []

    def test_mixed_platforms(self, session):
        fast = StarPlatform.from_speeds([10.0, 10.0])
        slow = StarPlatform.from_speeds([1.0, 1.0])
        results = session.plan_batch(
            [
                PlanRequest(platform=fast, N=100.0, strategy="het"),
                PlanRequest(platform=slow, N=100.0, strategy="het"),
            ]
        )
        # same relative speeds → same partition → same comm volume
        assert results[0].comm_volume == pytest.approx(results[1].comm_volume)


class TestSweep:
    def test_sweeps_every_registered_strategy(
        self, session, heterogeneous_platform
    ):
        sweep = session.sweep(heterogeneous_platform, 1000.0)
        assert isinstance(sweep, PlanSweep)
        assert set(sweep.results) == set(ALL_STRATEGIES)

    def test_iteration_order_is_sorted(self, session, heterogeneous_platform):
        sweep = session.sweep(
            heterogeneous_platform, 1000.0, strategies=("hom", "het")
        )
        assert list(sweep.results) == ["het", "hom"]
        full = session.sweep(heterogeneous_platform, 500.0)
        assert list(full.results) == sorted(full.results)

    def test_params_reach_accepting_strategy(
        self, session, heterogeneous_platform
    ):
        sweep = session.sweep(
            heterogeneous_platform, 1000.0, imbalance_target=0.5
        )
        res = sweep.results["hom/k"]
        converged = res.plan.detail.get("converged", True)
        assert res.imbalance <= 0.5 or not converged


class TestBackendEquivalence:
    """Acceptance: backends change wall-clock, never results."""

    @pytest.mark.parametrize("backend", ["threaded", "process"])
    def test_identical_to_serial(self, backend, heterogeneous_platform):
        with PlannerSession(backend="serial") as serial:
            reference = serial.sweep(heterogeneous_platform, 1000.0)
        with PlannerSession(backend=backend) as concurrent:
            sweep = concurrent.sweep(heterogeneous_platform, 1000.0)
        assert list(sweep.results) == list(reference.results)
        for name, res in reference.results.items():
            other = sweep.results[name]
            assert other.comm_volume == res.comm_volume, name
            assert other.ratio_to_lower_bound == res.ratio_to_lower_bound, name

    def test_threaded_render_matches_serial(self, heterogeneous_platform):
        def table_values(sweep):
            # strip the timing column: identical content, differing ms
            return [
                (name, res.comm_volume, res.ratio_to_lower_bound)
                for name, res in sweep.results.items()
            ]

        with PlannerSession(backend="serial") as a, PlannerSession(
            backend="threaded"
        ) as b:
            assert table_values(
                a.sweep(heterogeneous_platform, 2000.0)
            ) == table_values(b.sweep(heterogeneous_platform, 2000.0))

    def test_backend_instances_accepted(self, heterogeneous_platform):
        from repro.core.backends import SerialBackend

        with PlannerSession(backend=SerialBackend()) as session:
            assert session.backend_name == "serial"
            assert session.sweep(heterogeneous_platform, 100.0).results

    def test_jobs_forwarded(self, heterogeneous_platform):
        with PlannerSession(backend="threaded", jobs=2) as session:
            assert session.backend.jobs == 2
            session.sweep(heterogeneous_platform, 100.0)


class TestCache:
    def test_repeated_sweep_hits_every_strategy(self, heterogeneous_platform):
        with PlannerSession() as session:
            first = session.sweep(heterogeneous_platform, 1000.0)
            assert first.cache_hits == 0
            assert first.cache_misses == len(ALL_STRATEGIES)
            second = session.sweep(heterogeneous_platform, 1000.0)
        # acceptance: >= 1 hit per strategy, no re-planning time spent
        assert second.cache_hits == len(ALL_STRATEGIES)
        assert second.cache_misses == 0
        for res in second.results.values():
            assert res.cached
            assert res.elapsed_s == 0.0

    def test_stats_accumulate(self, heterogeneous_platform):
        with PlannerSession() as session:
            session.sweep(heterogeneous_platform, 1000.0)
            session.sweep(heterogeneous_platform, 1000.0)
            stats = session.cache_stats()
        assert stats.hits == len(ALL_STRATEGIES)
        assert stats.misses == len(ALL_STRATEGIES)
        assert stats.lookups == 2 * len(ALL_STRATEGIES)
        assert stats.hit_rate == pytest.approx(0.5)
        assert "hit rate" in stats.render()

    def test_ignored_param_shares_entry(self, heterogeneous_platform):
        """Two requests differing only in an ignored param share an entry."""
        with PlannerSession() as session:
            first = session.plan(
                PlanRequest(
                    platform=heterogeneous_platform,
                    N=1000.0,
                    strategy="het",
                    params={"imbalance_target": 0.01},
                )
            )
            # "het" does not accept imbalance_target → same cache entry
            second = session.plan(
                PlanRequest(
                    platform=heterogeneous_platform,
                    N=1000.0,
                    strategy="het",
                    params={"imbalance_target": 0.75},
                )
            )
            assert not first.cached
            assert second.cached
            assert len(session.cache) == 1

    def test_honored_param_gets_own_entry(self, heterogeneous_platform):
        with PlannerSession() as session:
            first = session.plan(
                PlanRequest(
                    platform=heterogeneous_platform,
                    N=1000.0,
                    strategy="hom/k",
                    params={"imbalance_target": 0.01},
                )
            )
            # hom/k honors imbalance_target → different key, a miss
            second = session.plan(
                PlanRequest(
                    platform=heterogeneous_platform,
                    N=1000.0,
                    strategy="hom/k",
                    params={"imbalance_target": 0.75},
                )
            )
            assert not first.cached and not second.cached
            assert len(session.cache) == 2

    def test_clear_cache_invalidates(self, heterogeneous_platform):
        with PlannerSession() as session:
            request = PlanRequest(
                platform=heterogeneous_platform, N=1000.0, strategy="het"
            )
            session.plan(request)
            assert session.plan(request).cached
            session.clear_cache()
            assert len(session.cache) == 0
            replanned = session.plan(request)
        assert not replanned.cached
        stats = session.cache_stats()
        # clear() resets the counters too: one miss since, nothing else
        assert (stats.hits, stats.misses) == (0, 1)

    def test_different_platform_content_misses(self):
        with PlannerSession() as session:
            session.plan(
                PlanRequest(
                    platform=StarPlatform.from_speeds([1.0, 2.0]), N=100.0
                )
            )
            other = session.plan(
                PlanRequest(
                    platform=StarPlatform.from_speeds([1.0, 3.0]), N=100.0
                )
            )
        assert not other.cached

    def test_cache_disabled(self, heterogeneous_platform):
        with PlannerSession(cache=False) as session:
            assert session.cache is None
            assert session.cache_stats() is None
            sweep = session.sweep(heterogeneous_platform, 1000.0)
            again = session.sweep(heterogeneous_platform, 1000.0)
        assert sweep.cache_hits is None and sweep.cache_misses is None
        assert not any(res.cached for res in again.results.values())
        assert "cache:" not in again.render()

    def test_shared_cache_between_sessions(self, heterogeneous_platform):
        shared = PlanCache()
        request = PlanRequest(
            platform=heterogeneous_platform, N=1000.0, strategy="het"
        )
        with PlannerSession(cache=shared) as first:
            first.plan(request)
        with PlannerSession(cache=shared) as second:
            assert second.plan(request).cached

    def test_lru_eviction(self, heterogeneous_platform):
        cache = PlanCache(max_entries=2)
        with PlannerSession(cache=cache) as session:
            for n in (100.0, 200.0, 300.0):
                session.plan(
                    PlanRequest(platform=heterogeneous_platform, N=n)
                )
            assert len(cache) == 2
            assert cache.stats.evictions == 1
            # the oldest entry (N=100) was evicted → re-planning misses
            oldest = session.plan(
                PlanRequest(platform=heterogeneous_platform, N=100.0)
            )
        assert not oldest.cached

    def test_key_ignores_param_order(self, heterogeneous_platform):
        factory = registry.get("strategy", "hom/k")
        a = plan_cache_key(
            PlanRequest(
                platform=heterogeneous_platform,
                N=10.0,
                strategy="hom/k",
                params={"imbalance_target": 0.1},
            ),
            factory,
        )
        b = plan_cache_key(
            PlanRequest(
                platform=heterogeneous_platform,
                N=10.0,
                strategy="hom/k",
                params={"imbalance_target": 0.1},
            ),
            factory,
        )
        assert a == b


class TestRenderWithCache:
    def test_render_reports_hits(self, heterogeneous_platform):
        with PlannerSession() as session:
            session.sweep(heterogeneous_platform, 1000.0)
            text = session.sweep(heterogeneous_platform, 1000.0).render()
        assert "3 hit(s)" in text
        assert "served from cache" in text


class TestDefaultSession:
    def test_singleton(self):
        reset_default_session()
        try:
            assert default_session() is default_session()
        finally:
            reset_default_session()

    def test_reset_builds_fresh(self):
        first = default_session()
        reset_default_session()
        try:
            assert default_session() is not first
        finally:
            reset_default_session()
