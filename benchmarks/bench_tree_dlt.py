"""Benchmark: DLT on multi-level trees (substrate extension).

Not a paper figure — the paper's model is the star — but the
"single-level tree network" literature it critiques ([33], [34]) lives
one generalisation away, and the library covers it: exact equivalent-
rate closed forms for linear loads, the fixed-point solver for
non-linear ones, and the §2 result persisting under relaying.
"""

import numpy as np
import pytest

from repro.dlt.tree_solver import equivalent_rate, solve_tree
from repro.platform.tree import TreePlatform
from repro.util.tables import format_table


def test_tree_linear_solver_vs_closed_form(benchmark):
    def run():
        rows = []
        for depth, fanout in ((1, 8), (2, 3), (3, 2)):
            plat = TreePlatform.balanced(depth=depth, fanout=fanout, bandwidth=4.0)
            alloc = solve_tree(plat, 100.0)
            closed = 100.0 / equivalent_rate(plat.root)
            rows.append([depth, fanout, plat.size, alloc.makespan, closed])
        return rows

    rows = benchmark.pedantic(run, iterations=1, rounds=1)
    print()
    print(
        format_table(
            ["depth", "fanout", "nodes", "solver makespan", "closed form"],
            rows,
            title="Linear DLT on trees: fixed-point solver vs equivalent rates",
        )
    )
    for depth, fanout, nodes, solved, closed in rows:
        assert solved == pytest.approx(closed, rel=1e-6)


def test_tree_no_free_lunch(benchmark):
    """§2 extends to trees: relay layers do not restore N^α work."""

    def run():
        rows = []
        for fanout in (2, 4, 8):
            plat = TreePlatform.balanced(depth=2, fanout=fanout, bandwidth=1e4)
            alloc = solve_tree(plat, 100.0, alpha=2.0)
            rows.append(
                [fanout, plat.size, alloc.covered_work_fraction(100.0),
                 1.0 / plat.size]
            )
        return rows

    rows = benchmark.pedantic(run, iterations=1, rounds=1)
    print()
    print(
        format_table(
            ["fanout", "workers", "covered fraction", "1/P"],
            rows,
            title="No free lunch on depth-2 trees (alpha = 2, fast links):",
        )
    )
    for fanout, workers, frac, inv_p in rows:
        assert frac == pytest.approx(inv_p, rel=0.25)


def test_tree_solver_throughput(benchmark):
    """Solver speed on a 3-level, 85-node tree (single measured round —
    one solve is ~1s, dominated by the nested bisections)."""
    plat = TreePlatform.balanced(depth=3, fanout=4, bandwidth=2.0)
    alloc = benchmark.pedantic(
        solve_tree, args=(plat, 1000.0), iterations=1, rounds=1
    )
    assert alloc.total == pytest.approx(1000.0)
