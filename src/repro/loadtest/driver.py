"""Open-loop load-test driver for plan servers and cluster coordinators.

The driver replays a deterministic :func:`~repro.loadtest.stream.
request_stream` against a live target at a fixed rate.  It is
**open-loop**: operation ``i``'s send slot is ``start + i / rps``,
fixed before the run begins and independent of how long earlier
responses take.  A closed-loop driver (send, wait, send) silently
slows down when the server does — the coordinated-omission trap — and
reports flattering latencies for an overloaded system.  Here a slow
server faces the *same* arrival rate and the backlog shows up where it
belongs: in client-side p99 and in the scheduler-lag gauge.

Mechanics per worker thread:

* its own :class:`~repro.service.client.ServiceClient` with
  ``retries=0`` — one operation is exactly one HTTP request, which is
  what makes the client-vs-server count reconciliation exact rather
  than "roughly, modulo retries";
* its own :class:`~repro.service.metrics.ServerMetrics` for latency —
  no shared lock on the hot path; the per-thread payloads are merged
  losslessly by :func:`~repro.service.metrics.merge_metrics` when the
  run ends (the same machinery the coordinator uses on its workers);
* threads pull the next stream index from one shared counter, sleep
  until its slot, fire, classify the outcome.

Outcome taxonomy (mirrors the service error model):

==============  =====================================================
``ok``          answered 2xx (a cache miss answering ``None`` is ok)
``refused_429`` the admission gate said come back — backpressure
                working as designed; reported, not budgeted
``error``       any other *answered* error (4xx/5xx) — budgeted
``unavailable`` transport failure; the request never reached a
                healthy server — budgeted, and excluded from the
                server-side count reconciliation
==============  =====================================================

The wire-profile handshake runs before the clock starts, so the
measured window contains planning traffic only.
"""

from __future__ import annotations

import math
import threading
import time
from typing import Any, Dict, List, Mapping, Optional

from repro.loadtest.report import LoadtestReport, cross_check
from repro.loadtest.stream import Op, request_stream
from repro.obs import SpanRecorder, TraceContext, start_trace
from repro.service.client import (
    PlanServiceError,
    PlanServiceUnavailable,
    ServiceClient,
    service_url,
)
from repro.service.metrics import ServerMetrics, merge_metrics

#: synthetic status for transport failures (no server answer exists);
#: >= 400 so client-side histograms count them as errors
STATUS_UNREACHABLE = 599


class _Tally:
    """One thread's private outcome counters (merged after the join)."""

    __slots__ = (
        "ok", "errors", "refused_429", "unavailable", "ok_weight",
        "attempted", "unreachable", "lags_s",
    )

    def __init__(self) -> None:
        self.ok = 0
        self.errors = 0
        self.refused_429 = 0
        self.unavailable = 0
        self.ok_weight = 0
        self.attempted: Dict[str, int] = {}
        self.unreachable: Dict[str, int] = {}
        self.lags_s: List[float] = []


def _execute(
    client: ServiceClient, op: Op, trace: Optional[TraceContext] = None
) -> int:
    """Fire one operation; return the (possibly synthetic) HTTP status."""
    if op.kind == "plan":
        client.plan(op.payload, trace=trace)
    elif op.kind == "plan_batch":
        client.plan_items(op.payload, trace=trace)
    else:
        client.cache_get(op.payload, trace=trace)
    return 200


def _worker(
    base_url: str,
    profile: str,
    timeout: float,
    ops: List[Op],
    rps: float,
    start: Dict[str, float],
    cursor: Dict[str, int],
    cursor_lock: threading.Lock,
    metrics: ServerMetrics,
    tally: _Tally,
    trace_sample: Optional[int] = None,
    recorder: Optional[SpanRecorder] = None,
) -> None:
    client = ServiceClient(
        base_url,
        timeout=timeout,
        retries=0,
        wire_profile=profile,
        span_recorder=recorder,
    )
    # pin the negotiated profile so the thread's first planning call
    # needs no /healthz round-trip inside the measured window
    client.wire_profile()
    start["barrier"].wait()  # type: ignore[attr-defined]
    while True:
        with cursor_lock:
            index = cursor["next"]
            cursor["next"] += 1
        if index >= len(ops):
            return
        op = ops[index]
        slot = start["t0"] + index / rps
        wait = slot - time.monotonic()
        if wait > 0:
            time.sleep(wait)
        tally.lags_s.append(max(0.0, time.monotonic() - slot))
        endpoint = op.endpoint
        tally.attempted[endpoint] = tally.attempted.get(endpoint, 0) + 1
        # sampling keys on the stream index, not the thread: whichever
        # thread pulls op N, the same deterministic 1-in-N slots trace
        trace = (
            start_trace()
            if trace_sample is not None and index % trace_sample == 0
            else None
        )
        began = time.perf_counter()
        try:
            status = _execute(client, op, trace)
        except PlanServiceUnavailable:
            status = STATUS_UNREACHABLE
            tally.unavailable += 1
            tally.unreachable[endpoint] = (
                tally.unreachable.get(endpoint, 0) + 1
            )
        except PlanServiceError as exc:
            status = exc.code if exc.code is not None else STATUS_UNREACHABLE
            if exc.code == 429:
                tally.refused_429 += 1
            elif exc.code is None:
                # answered, but not with an HTTP status (wire-level
                # refusal): budget it like any other answered error
                tally.errors += 1
            else:
                tally.errors += 1
        else:
            tally.ok += 1
            tally.ok_weight += op.weight
        metrics.observe(endpoint, status, time.perf_counter() - began)


def run_loadtest(
    target: str,
    *,
    rps: float = 50.0,
    duration: float = 5.0,
    mix: Optional[Mapping[str, float]] = None,
    seed: int = 2013,
    threads: int = 4,
    wire_profile: Optional[str] = None,
    timeout: float = 10.0,
    error_budget: float = 0.01,
    batch_size: int = 8,
    p: int = 8,
    platforms: int = 4,
    strategy: str = "het",
    check_server: bool = True,
    ops: Optional[List[Op]] = None,
    trace_sample: Optional[int] = None,
) -> LoadtestReport:
    """Drive ``target`` at ``rps`` for ``duration`` seconds; report.

    ``target`` is any plan-serving base URL — a single
    :class:`~repro.service.server.PlanServer` or a
    :class:`~repro.cluster.coordinator.ClusterCoordinator` front door;
    the report's cross-check adapts to either ``/metrics`` shape.
    ``ops`` overrides the generated stream (tests inject hand-built
    ones); otherwise the stream is ``request_stream(ceil(rps *
    duration), seed=seed, ...)`` — deterministic, so two runs with one
    seed replay byte-identical traffic.

    ``check_server=False`` skips the ``/metrics`` snapshots (for
    targets that run with metrics disabled); the verdict then rests on
    the error budget alone.

    ``trace_sample=N`` tags every Nth stream operation with a fresh
    sampled trace context (``repro loadtest --trace-sample N``): the
    client records the root span per sampled op, the target — when run
    with ``--trace`` — records the server-side stages under the same
    trace id, and the report carries the sampled root spans so the
    measured tail can be attributed stage by stage (``repro trace``
    joins the two by id).
    """
    if rps <= 0:
        raise ValueError(f"rps must be > 0, got {rps}")
    if duration <= 0:
        raise ValueError(f"duration must be > 0, got {duration}")
    if threads < 1:
        raise ValueError(f"threads must be >= 1, got {threads}")
    if trace_sample is not None and trace_sample < 1:
        raise ValueError(f"trace_sample must be >= 1, got {trace_sample}")
    base_url = service_url(target)
    if ops is None:
        ops = request_stream(
            max(1, math.ceil(rps * duration)),
            seed=seed,
            mix=mix,
            platforms=platforms,
            p=p,
            batch_size=batch_size,
            strategy=strategy,
        )
    threads = min(threads, len(ops))

    # resolve the wire profile once, outside the measured window; the
    # same resolved name is pinned into every worker's client
    probe = ServiceClient(
        base_url, timeout=timeout, retries=0, wire_profile=wire_profile
    )
    profile = probe.wire_profile()

    before: Dict[str, Any] = {}
    if check_server:
        before = probe.get_json("/metrics")

    barrier = threading.Barrier(threads + 1)
    start: Dict[str, Any] = {"barrier": barrier, "t0": 0.0}
    cursor = {"next": 0}
    cursor_lock = threading.Lock()
    tallies = [_Tally() for _ in range(threads)]
    metrics = [ServerMetrics() for _ in range(threads)]
    # one buffering recorder shared by every worker client (its lock is
    # only taken on sampled ops); drained into the report after the join
    recorder = (
        SpanRecorder(service="client") if trace_sample is not None else None
    )
    workers = [
        threading.Thread(
            target=_worker,
            name=f"repro-loadtest-{i}",
            args=(
                base_url, profile, timeout, ops, rps, start, cursor,
                cursor_lock, metrics[i], tallies[i], trace_sample, recorder,
            ),
            daemon=True,
        )
        for i in range(threads)
    ]
    for worker in workers:
        worker.start()
    # every worker has finished its handshake once it reaches the
    # barrier; the clock starts only then
    start["t0"] = time.monotonic()
    barrier.wait()
    for worker in workers:
        worker.join()
    elapsed = time.monotonic() - start["t0"]

    after: Dict[str, Any] = {}
    if check_server:
        after = probe.get_json("/metrics")

    attempted: Dict[str, int] = {}
    unreachable: Dict[str, int] = {}
    lags: List[float] = []
    for tally in tallies:
        for endpoint, n in tally.attempted.items():
            attempted[endpoint] = attempted.get(endpoint, 0) + n
        for endpoint, n in tally.unreachable.items():
            unreachable[endpoint] = unreachable.get(endpoint, 0) + n
        lags.extend(tally.lags_s)
    lags.sort()
    lag_p99_s = lags[min(len(lags) - 1, int(0.99 * len(lags)))] if lags else 0.0

    checks = (
        cross_check(before, after, attempted, unreachable)
        if check_server
        else []
    )
    client_spans = recorder.drain() if recorder is not None else []
    return LoadtestReport(
        target=base_url,
        wire_profile=profile,
        seed=seed,
        threads=threads,
        target_rps=float(rps),
        duration_s=float(duration),
        elapsed_s=elapsed,
        sent=sum(attempted.values()),
        ok=sum(t.ok for t in tallies),
        errors=sum(t.errors for t in tallies),
        refused_429=sum(t.refused_429 for t in tallies),
        unavailable=sum(t.unavailable for t in tallies),
        ok_weight=sum(t.ok_weight for t in tallies),
        error_budget=float(error_budget),
        client_metrics=merge_metrics(m.payload() for m in metrics),
        server_before=dict(before),
        server_after=dict(after),
        checks=checks,
        schedule_lag_p99_ms=1000.0 * lag_p99_s,
        trace_sample=trace_sample,
        client_spans=client_spans,
    )
