"""The MapReduce execution engine.

Semantics follow the original model [23]: ``map(record) -> [(k, v)]``,
an optional ``combine`` applied per map task (the standard shuffle-
volume optimisation), a ``partition(key, n_reducers) -> reducer`` hash,
and ``reduce(key, [values]) -> [(k, out)]``.  Everything runs in one
process, deterministically; what matters for the paper is the *metered
shuffle*: the engine counts records and value-sizes crossing the
map→reduce boundary, which is the communication volume all of §4's
comparisons are about.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Hashable, Iterable, List, Sequence, Tuple

KV = Tuple[Hashable, Any]
MapFn = Callable[[Any], Iterable[KV]]
ReduceFn = Callable[[Hashable, List[Any]], Iterable[KV]]
CombineFn = Callable[[Hashable, List[Any]], List[Any]]
PartitionFn = Callable[[Hashable, int], int]
SizeFn = Callable[[Any], float]


def hash_partitioner(key: Hashable, n_reducers: int) -> int:
    """Deterministic default partitioner (stable across runs).

    Uses ``hash`` on a canonical repr rather than the salted built-in
    ``hash`` of strings, so shuffle assignments are reproducible.
    """
    h = 0
    for ch in repr(key):
        h = (h * 1000003 + ord(ch)) & 0x7FFFFFFF
    return h % n_reducers


def unit_size(_value: Any) -> float:
    """Default size function: every value weighs 1 data unit."""
    return 1.0


@dataclass(frozen=True)
class MapReduceJob:
    """A job description: functions + reducer count.

    ``size_of`` prices each shuffled *value* (e.g. 1 per matrix element)
    so volumes come out in the paper's data units.
    """

    map_fn: MapFn
    reduce_fn: ReduceFn
    n_reducers: int = 1
    combine_fn: CombineFn | None = None
    partition_fn: PartitionFn = hash_partitioner
    size_of: SizeFn = unit_size
    name: str = "job"

    def __post_init__(self) -> None:
        if self.n_reducers < 1:
            raise ValueError(f"n_reducers must be >= 1, got {self.n_reducers}")


@dataclass
class MapReduceMetrics:
    """Meters collected during one job execution."""

    map_input_records: int = 0
    map_output_records: int = 0
    #: records actually shuffled (post-combine)
    shuffle_records: int = 0
    #: Σ size_of(value) over shuffled records — the §4 volume
    shuffle_volume: float = 0.0
    reduce_input_groups: int = 0
    reduce_output_records: int = 0
    #: per-reducer shuffled volume (length n_reducers)
    reducer_volumes: List[float] = field(default_factory=list)

    @property
    def combine_savings(self) -> int:
        """Records eliminated by the combiner before the shuffle."""
        return self.map_output_records - self.shuffle_records

    @property
    def reducer_imbalance(self) -> float:
        """(max - min)/min over reducer volumes; 0 when degenerate."""
        vols = [v for v in self.reducer_volumes]
        if len(vols) <= 1:
            return 0.0
        lo, hi = min(vols), max(vols)
        if lo == 0:
            return float("inf") if hi > 0 else 0.0
        return (hi - lo) / lo


class MapReduceEngine:
    """Run jobs; keep the last run's metrics on the instance."""

    def __init__(self) -> None:
        self.metrics: MapReduceMetrics | None = None

    def run(
        self, job: MapReduceJob, inputs: Sequence[Any]
    ) -> Dict[Hashable, Any]:
        """Execute ``job`` over ``inputs``; returns the reduce output.

        Output is a dict ``{key: value}`` when reducers emit single
        values per key, else ``{key: [values...]}``.  Metrics land in
        ``self.metrics`` and are also returned via
        :meth:`run_with_metrics`.
        """
        output, metrics = self.run_with_metrics(job, inputs)
        return output

    def run_with_metrics(
        self, job: MapReduceJob, inputs: Sequence[Any]
    ) -> tuple[Dict[Hashable, Any], MapReduceMetrics]:
        m = MapReduceMetrics(reducer_volumes=[0.0] * job.n_reducers)

        # --- map phase (each input record = one map call) -------------
        per_task_output: List[List[KV]] = []
        for record in inputs:
            m.map_input_records += 1
            kvs = list(job.map_fn(record))
            m.map_output_records += len(kvs)
            per_task_output.append(kvs)

        # --- combine phase (per map task, like Hadoop) -----------------
        shuffled: List[KV] = []
        for kvs in per_task_output:
            if job.combine_fn is None:
                shuffled.extend(kvs)
                continue
            groups: Dict[Hashable, List[Any]] = {}
            order: List[Hashable] = []
            for k, v in kvs:
                if k not in groups:
                    groups[k] = []
                    order.append(k)
                groups[k].append(v)
            for k in order:
                for v in job.combine_fn(k, groups[k]):
                    shuffled.append((k, v))

        # --- shuffle phase (metered) -----------------------------------
        reducers: List[Dict[Hashable, List[Any]]] = [
            {} for _ in range(job.n_reducers)
        ]
        reducer_key_order: List[List[Hashable]] = [[] for _ in range(job.n_reducers)]
        for k, v in shuffled:
            r = job.partition_fn(k, job.n_reducers)
            if not 0 <= r < job.n_reducers:
                raise ValueError(
                    f"partitioner sent key {k!r} to reducer {r} "
                    f"(n_reducers={job.n_reducers})"
                )
            m.shuffle_records += 1
            size = job.size_of(v)
            m.shuffle_volume += size
            m.reducer_volumes[r] += size
            if k not in reducers[r]:
                reducers[r][k] = []
                reducer_key_order[r].append(k)
            reducers[r][k].append(v)

        # --- reduce phase ----------------------------------------------
        output: Dict[Hashable, Any] = {}
        for r in range(job.n_reducers):
            for k in reducer_key_order[r]:
                m.reduce_input_groups += 1
                outs = list(job.reduce_fn(k, reducers[r][k]))
                m.reduce_output_records += len(outs)
                for out_k, out_v in outs:
                    if out_k in output:
                        raise ValueError(
                            f"duplicate output key {out_k!r}; reducers must "
                            "emit disjoint key sets"
                        )
                    output[out_k] = out_v
        self.metrics = m
        return output, m
