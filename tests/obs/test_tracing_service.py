"""End-to-end tracing through one PlanServer: trees, sampling, logs."""

import io
import time
import urllib.request

import pytest

from repro.obs import SpanRecorder, assemble_traces, start_trace
from repro.platform.star import StarPlatform
from repro.core.pipeline import PlanRequest
from repro.service.client import ServiceClient
from repro.service.metrics import AccessLog, parse_access_line
from repro.service.server import PlanServer


def make_request(n=10_000.0):
    platform = StarPlatform.from_speeds([1.0, 2.0, 4.0, 8.0])
    return PlanRequest(platform=platform, N=n, strategy="het")


def settle():
    """The server's root span closes *after* the response is written;
    give the handler thread a beat before asserting recorder contents."""
    time.sleep(0.2)


@pytest.fixture()
def traced_server():
    recorder = SpanRecorder(service="server")
    with PlanServer(span_recorder=recorder) as server:
        yield server, recorder


class TestServerTracing:
    def test_traced_plan_builds_complete_tree(self, traced_server):
        server, server_rec = traced_server
        client_rec = SpanRecorder(service="client")
        client = ServiceClient(server.url, span_recorder=client_rec)
        ctx = start_trace()
        client.plan(make_request(), trace=ctx)
        settle()
        spans = client_rec.drain() + server_rec.drain()
        (trace,) = assemble_traces(spans)
        assert trace.trace_id == ctx.trace_id
        assert trace.complete
        assert trace.root.name == "client /plan"
        names = [span.name for _, span in trace.walk()]
        assert names == [
            "client /plan",
            "server /plan",
            "wire_decode",
            "cache_lookup",
            "plan_kernel",
            "wire_encode",
        ]
        # every server stage nests inside the client-observed window
        root = trace.root
        for _, span in trace.walk():
            assert span.start_s >= root.start_s - 1e-6
        assert trace.accounted_fraction() > 0.0

    def test_cache_hit_skips_the_kernel(self, traced_server):
        server, server_rec = traced_server
        client = ServiceClient(server.url)
        request = make_request()
        client.plan(request, trace=start_trace())
        client.plan(request, trace=start_trace())  # same key: cache hit
        settle()
        by_trace = {}
        for span in server_rec.drain():
            by_trace.setdefault(span.trace_id, []).append(span.name)
        first, second = sorted(
            by_trace.values(), key=lambda names: "plan_kernel" not in names
        )
        assert "plan_kernel" in first
        assert "plan_kernel" not in second

    def test_untraced_request_records_nothing(self, traced_server):
        server, server_rec = traced_server
        ServiceClient(server.url).plan(make_request())
        settle()
        assert server_rec.drain() == []

    def test_unsampled_context_records_nothing(self, traced_server):
        server, server_rec = traced_server
        ServiceClient(server.url).plan(
            make_request(), trace=start_trace(sampled=False)
        )
        settle()
        assert server_rec.drain() == []

    def test_client_sampling_one_in_n(self, traced_server):
        server, server_rec = traced_server
        client_rec = SpanRecorder(service="client")
        client = ServiceClient(
            server.url, trace_sample=3, span_recorder=client_rec
        )
        for _ in range(6):
            client.cache_get(("miss", 1))
        settle()
        client_spans = client_rec.drain()
        assert len(client_spans) == 2  # ops 0 and 3 of 6
        sampled_ids = {span.trace_id for span in client_spans}
        server_ids = {span.trace_id for span in server_rec.drain()}
        assert server_ids == sampled_ids

    def test_trace_sample_validation(self, traced_server):
        server, _ = traced_server
        with pytest.raises(ValueError, match="trace_sample"):
            ServiceClient(server.url, trace_sample=0)


class TestAccessLogJoin:
    def test_sampled_line_carries_trace_id(self):
        buf = io.StringIO()
        recorder = SpanRecorder(service="server")
        with PlanServer(
            access_log=AccessLog(buf), span_recorder=recorder
        ) as server:
            client = ServiceClient(server.url)
            ctx = start_trace()
            client.plan(make_request(), trace=ctx)
            client.plan(make_request(2000.0))  # untraced
            settle()
        lines = [parse_access_line(l) for l in buf.getvalue().splitlines()]
        by_trace = {entry["trace"] for entry in lines}
        assert by_trace == {ctx.trace_id, "-"}
        # the logged id joins against the recorded spans
        recorded = {span.trace_id for span in recorder.drain()}
        assert recorded == {ctx.trace_id}

    def test_unsampled_context_logs_dash(self):
        buf = io.StringIO()
        with PlanServer(access_log=AccessLog(buf)) as server:
            ServiceClient(server.url).plan(
                make_request(), trace=start_trace(sampled=False)
            )
        (entry,) = [
            parse_access_line(l)
            for l in buf.getvalue().splitlines()
            if parse_access_line(l)["endpoint"] == "/plan"
        ]
        assert entry["trace"] == "-"


class TestPrometheusEndpoint:
    def fetch(self, url):
        with urllib.request.urlopen(url, timeout=10) as resp:
            return resp.status, resp.headers.get("Content-Type"), resp.read(
            ).decode("utf-8")

    def test_prometheus_format(self):
        with PlanServer() as server:
            client = ServiceClient(server.url)
            client.plan(make_request())
            status, ctype, body = self.fetch(
                f"{server.url}/metrics?format=prometheus"
            )
        assert status == 200
        assert ctype.startswith("text/plain")
        assert "# TYPE repro_request_duration_seconds histogram" in body
        assert 'le="+Inf"' in body
        assert 'repro_requests_total{endpoint="/plan"} 1' in body
        # cumulative buckets: counts never decrease as le grows
        counts = [
            float(line.rsplit(" ", 1)[1])
            for line in body.splitlines()
            if line.startswith(
                'repro_request_duration_seconds_bucket{endpoint="/plan"'
            )
        ]
        assert counts == sorted(counts)
        assert counts[-1] == 1.0

    def test_json_format_is_the_default_payload(self):
        with PlanServer() as server:
            client = ServiceClient(server.url)
            explicit = client.get_json("/metrics?format=json")
            default = client.get_json("/metrics")
        # same shape either way (counters move between the two calls)
        assert explicit.keys() == default.keys()
        assert "endpoints" in explicit and "uptime_s" in explicit

    def test_unknown_format_is_400(self):
        with PlanServer() as server:
            with pytest.raises(urllib.error.HTTPError) as err:
                self.fetch(f"{server.url}/metrics?format=xml")
            assert err.value.code == 400
