"""Smoke tests for the registry-driven CLI sub-commands."""

import pytest

from repro.cli import main


class TestList:
    def test_list_all_kinds(self, capsys):
        rc = main(["list"])
        out = capsys.readouterr().out
        assert rc == 0
        for kind in (
            "cost_model",
            "strategy",
            "partitioner",
            "dlt_solver",
            "simulation",
        ):
            assert kind in out
        # a representative of each family
        for name in ("het", "peri-sum", "linear-parallel", "demand-driven"):
            assert name in out

    def test_list_one_kind(self, capsys):
        rc = main(["list", "strategy"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "het" in out and "hom/k" in out
        assert "peri-sum" not in out

    def test_list_rejects_unknown_kind(self):
        with pytest.raises(SystemExit):
            main(["list", "flavour"])


class TestPlan:
    def test_plan_single_strategy(self, capsys):
        rc = main(
            ["plan", "--speeds", "1", "2", "4", "--N", "1000",
             "--strategy", "het"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "het" in out and "planned in" in out

    def test_plan_unknown_strategy_lists_available(self, capsys):
        rc = main(["plan", "--speeds", "1", "2", "--strategy", "warp-drive"])
        err = capsys.readouterr().err
        assert rc == 2
        assert "unknown strategy 'warp-drive'" in err
        # the error names every registered strategy
        for name in ("het", "hom", "hom/k"):
            assert name in err

    def test_plan_default_compares_all(self, capsys):
        rc = main(["plan", "--speeds", "1", "2", "4", "--N", "1000"])
        out = capsys.readouterr().out
        assert rc == 0
        for name in ("hom", "hom/k", "het"):
            assert name in out


class TestCompare:
    def test_compare_sweeps_registry(self, capsys):
        rc = main(["compare", "--speeds", "1", "2", "4", "8", "--N", "1000"])
        out = capsys.readouterr().out
        assert rc == 0
        for name in ("hom", "hom/k", "het"):
            assert name in out
        assert "ratio to LB" in out
        assert "best: het" in out
