"""Setup shim; metadata lives in setup.cfg.

Kept as an explicit file (rather than pyproject.toml) so offline
environments without the `wheel` package can `pip install -e .` via
the legacy editable path — see setup.cfg's note.
"""

from setuptools import setup

setup()
