"""End-to-end flows a downstream user would run (quickstart-grade)."""

import numpy as np
import pytest

import repro
from repro import (
    StarPlatform,
    compare_strategies,
    peri_sum_partition,
    plan_outer_product,
    sample_sort,
    solve_linear_parallel,
    solve_nonlinear_parallel,
)
from repro.mapreduce import MapReduceEngine, word_count_job
from repro.matmul import (
    RectangleLayout,
    outer_product_matmul,
    partitioned_matmul,
    simulate_outer_product_matmul,
)


class TestPublicAPI:
    def test_version(self):
        assert repro.__version__ == "2.0.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_quickstart_snippet(self):
        """The README / module docstring example, verbatim."""
        platform = StarPlatform.from_speeds([1, 2, 4, 8])
        plan = plan_outer_product(platform, N=10_000, strategy="het")
        assert "het" in plan.summary()
        assert plan.ratio_to_lower_bound < 1.75


class TestFullMatmulPipeline:
    def test_speeds_to_verified_product(self):
        """speeds → partition → layout → comm account → numeric check."""
        rng = np.random.default_rng(0)
        speeds = rng.uniform(1, 10, 5)
        x = speeds / speeds.sum()
        part = peri_sum_partition(x)

        n = 20
        layout = RectangleLayout(part, n=n)
        run = simulate_outer_product_matmul(layout)
        assert run.total_no_reuse == pytest.approx(
            n * sum(layout.rows_of(i).size + layout.cols_of(i).size for i in range(5))
        )

        A, B = rng.normal(size=(n, n)), rng.normal(size=(n, n))
        assert np.allclose(partitioned_matmul(A, B, part), A @ B)
        assert np.allclose(outer_product_matmul(A, B, layout), A @ B)


class TestFullSortingPipeline:
    def test_dlt_then_sample_sort(self):
        """A user sizing a sorting job: analytic residue, then the run."""
        platform = StarPlatform.from_speeds([2.0, 2.0, 4.0])
        keys = np.random.default_rng(1).random(120_000)
        res = sample_sort(keys, platform, rng=2)
        assert np.array_equal(res.sorted_keys, np.sort(keys))
        assert res.speedup() > 1.0


class TestFullDLTPipeline:
    def test_linear_vs_nonlinear_story(self):
        """The §2 narrative through the public API."""
        platform = StarPlatform.homogeneous(64)
        linear = solve_linear_parallel(platform, 10_000.0)
        assert linear.total == pytest.approx(10_000.0)

        nonlinear = solve_nonlinear_parallel(platform, 10_000.0, alpha=2.0)
        assert nonlinear.covered_fraction == pytest.approx(1 / 64, rel=1e-5)


class TestMapReducePipeline:
    def test_word_count_end_to_end(self):
        job, make_inputs = word_count_job(n_reducers=3)
        out = MapReduceEngine().run(job, make_inputs(["to be or not to be"]))
        assert out["to"] == 2 and out["be"] == 2 and out["or"] == 1


class TestStrategyComparison:
    def test_figure4_cell_through_facade(self):
        platform = StarPlatform.from_speeds([1.0, 3.0, 9.0, 27.0])
        cmp = compare_strategies(platform, 5000.0)
        assert cmp.ratios["het"] < cmp.ratios["hom/k"]
        assert cmp.rho > 1.0
