"""Memory-footprint accounting for block assignments (Figure 2).

§4.1.3's Figure 2 contrasts the *naive* volume (each chunk ships its
full ``2D`` input, MapReduce semantics) with the *footprint* — the union
of ``a``- and ``b``-segments a worker actually needs.  For a worker
holding blocks at grid cells ``(r, c)`` with block side ``d``:

* naive volume  = ``#blocks × 2d``,
* footprint     = ``(#distinct r + #distinct c) × d``.

The footprint is what a data-reuse-aware runtime (or the paper's
proposed affinity directives) could achieve; the gap between the two is
the redundancy MapReduce pays.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.util.validation import check_positive

GridCell = tuple[int, int]


def naive_block_volume(n_blocks: int, block_side: float) -> float:
    """Volume with per-chunk shipping: ``n_blocks * 2 * block_side``."""
    if n_blocks < 0:
        raise ValueError(f"n_blocks must be >= 0, got {n_blocks}")
    check_positive(block_side, "block_side")
    return float(n_blocks * 2.0 * block_side)


def block_footprint_volume(
    cells: Iterable[GridCell], block_side: float
) -> float:
    """Union footprint of a set of grid cells: distinct rows + cols.

    ``cells`` are ``(row, col)`` block coordinates of one worker.
    """
    check_positive(block_side, "block_side")
    rows = set()
    cols = set()
    for r, c in cells:
        rows.add(int(r))
        cols.add(int(c))
    return (len(rows) + len(cols)) * float(block_side)


def assignment_footprints(
    assignment: Mapping[int, Sequence[GridCell]], block_side: float
) -> dict[int, dict[str, float]]:
    """Per-worker naive-vs-footprint volumes for a full grid assignment.

    Returns ``{worker: {"naive": v1, "footprint": v2, "savings": v1-v2}}``.
    Footprint never exceeds naive (each block contributes at most one
    new row and one new column); tests enforce this as an invariant.
    """
    out = {}
    for worker, cells in assignment.items():
        cells = list(cells)
        naive = naive_block_volume(len(cells), block_side)
        fp = block_footprint_volume(cells, block_side)
        out[worker] = {
            "naive": naive,
            "footprint": fp,
            "savings": naive - fp,
        }
    return out


def demand_driven_grid_assignment(
    counts: Sequence[int], grid: int, order: str = "row-major"
) -> dict[int, list[GridCell]]:
    """Materialise a demand-driven block assignment onto a ``grid²`` grid.

    The §4.1.1 simulation assigns *counts* of identical chunks; to
    compute footprints (Figure 2) those chunks need positions.  Demand
    arrival interleaves workers, so we deal cells round-robin weighted
    by counts — worker *i* takes its next cell each time its turn comes,
    matching the scattered footprint the paper depicts.

    ``order``: ``"row-major"`` scans cells left-to-right, top-to-bottom;
    ``"shuffled"`` is not offered — determinism is a test requirement.
    """
    counts = np.asarray(counts, dtype=int)
    if counts.sum() > grid * grid:
        raise ValueError(
            f"cannot place {counts.sum()} blocks on a {grid}x{grid} grid"
        )
    if order != "row-major":
        raise ValueError(f"unsupported order {order!r}")
    remaining = counts.copy()
    assignment: dict[int, list[GridCell]] = {i: [] for i in range(counts.size)}
    cell_iter = ((r, c) for r in range(grid) for c in range(grid))
    while remaining.sum() > 0:
        for worker in range(counts.size):
            if remaining[worker] > 0:
                try:
                    assignment[worker].append(next(cell_iter))
                except StopIteration:  # pragma: no cover - guarded above
                    raise RuntimeError("grid exhausted")
                remaining[worker] -= 1
    return assignment
