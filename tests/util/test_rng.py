"""Tests for repro.util.rng — determinism is the experiment contract."""

import numpy as np
import pytest

from repro.util.rng import (
    make_rng,
    permutation,
    sample_without_replacement,
    spawn_rngs,
    trial_seeds,
)


class TestMakeRng:
    def test_int_seed_is_deterministic(self):
        a = make_rng(7).random(5)
        b = make_rng(7).random(5)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        assert not np.array_equal(make_rng(1).random(5), make_rng(2).random(5))

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert make_rng(gen) is gen

    def test_none_gives_generator(self):
        assert isinstance(make_rng(None), np.random.Generator)

    def test_seedsequence_accepted(self):
        ss = np.random.SeedSequence(3)
        a = make_rng(ss).random(3)
        b = make_rng(np.random.SeedSequence(3)).random(3)
        assert np.array_equal(a, b)


class TestSpawnRngs:
    def test_streams_are_independent_and_reproducible(self):
        first = [g.random(4) for g in spawn_rngs(11, 3)]
        second = [g.random(4) for g in spawn_rngs(11, 3)]
        for a, b in zip(first, second):
            assert np.array_equal(a, b)
        # distinct streams differ
        assert not np.array_equal(first[0], first[1])

    def test_spawn_count(self):
        assert len(spawn_rngs(0, 7)) == 7
        assert spawn_rngs(0, 0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_spawn_from_generator(self):
        gen = np.random.default_rng(5)
        children = spawn_rngs(gen, 2)
        assert len(children) == 2

    def test_prefix_stability(self):
        """Trial i's stream must not depend on how many trials exist."""
        few = [g.random(2) for g in spawn_rngs(99, 2)]
        many = [g.random(2) for g in spawn_rngs(99, 5)]
        assert np.array_equal(few[0], many[0])
        assert np.array_equal(few[1], many[1])


class TestHelpers:
    def test_trial_seeds_reproducible(self):
        assert trial_seeds(4, 5) == trial_seeds(4, 5)
        assert all(s >= 0 for s in trial_seeds(4, 5))

    def test_permutation_is_permutation(self):
        p = permutation(make_rng(0), 10)
        assert sorted(p.tolist()) == list(range(10))

    def test_permutation_out_buffer(self):
        out = np.empty(6, dtype=np.int64)
        p = permutation(make_rng(0), 6, out=out)
        assert p is out

    def test_sample_without_replacement_unique(self):
        s = sample_without_replacement(make_rng(0), np.arange(50), 20)
        assert len(set(s.tolist())) == 20

    def test_sample_too_large_rejected(self):
        with pytest.raises(ValueError):
            sample_without_replacement(make_rng(0), np.arange(3), 5)
