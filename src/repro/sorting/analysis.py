"""Statistical analysis of bucket sizes — Theorem B.4 empirically (§3.1).

The paper leans on Blelloch et al.'s Theorem B.4: with oversampling
:math:`s = \\log^2 N`, the largest bucket exceeds
:math:`\\frac{N}{p}(1 + (1/\\log N)^{1/3})` with probability at most
:math:`N^{-1/3}`.  These helpers run repeated bucketings and measure the
max-bucket distribution so tests (and EXPERIMENTS.md) can confirm the
concentration the argument needs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.almost_linear import (
    recommended_oversampling,
    theorem_b4_max_bucket_bound,
)
from repro.sorting.splitters import bucketize, choose_splitters
from repro.util.rng import SeedLike, make_rng, spawn_rngs
from repro.util.validation import check_integer


@dataclass(frozen=True)
class BucketStats:
    """Max-bucket distribution over repeated random bucketings."""

    N: int
    p: int
    s: int
    trials: int
    max_sizes: np.ndarray
    #: the Theorem-B.4 threshold (N/p)(1 + (1/log N)^(1/3))
    b4_bound: float

    @property
    def mean_max(self) -> float:
        return float(self.max_sizes.mean())

    @property
    def worst_max(self) -> int:
        return int(self.max_sizes.max())

    @property
    def expected_bucket(self) -> float:
        return self.N / self.p

    @property
    def mean_overflow(self) -> float:
        """Mean of ``MaxSize / (N/p) - 1`` — the observed imbalance."""
        return float(self.max_sizes.mean() / self.expected_bucket - 1.0)

    @property
    def violation_rate(self) -> float:
        """Empirical ``P[MaxSize > b4_bound]``; Theorem B.4 says
        this is at most :math:`N^{-1/3}`."""
        return float(np.mean(self.max_sizes > self.b4_bound))


def max_bucket_statistics(
    N: int,
    p: int,
    trials: int = 50,
    s: int | None = None,
    rng: SeedLike = 0,
    distribution: str = "uniform",
) -> BucketStats:
    """Sample ``trials`` random inputs; record each trial's max bucket.

    ``distribution`` ∈ {"uniform", "normal", "sorted", "zipf-ish"}: the
    paper stresses that sample sort's behaviour is *input-independent*
    (all randomness comes from the sample), and tests verify the stats
    barely move across input distributions.
    """
    check_integer(N, "N", minimum=2)
    check_integer(p, "p", minimum=1)
    check_integer(trials, "trials", minimum=1)
    if s is None:
        s = recommended_oversampling(N)
    rngs = spawn_rngs(rng, trials)
    maxes = np.empty(trials, dtype=int)
    for t, trial_rng in enumerate(rngs):
        keys = _make_input(N, distribution, trial_rng)
        splitters = choose_splitters(keys, p, s, rng=trial_rng)
        buckets = bucketize(keys, splitters)
        maxes[t] = max(b.size for b in buckets)
    return BucketStats(
        N=N,
        p=p,
        s=int(s),
        trials=trials,
        max_sizes=maxes,
        b4_bound=theorem_b4_max_bucket_bound(N, p),
    )


def empirical_b4_violation_rate(
    N: int, p: int, trials: int = 50, rng: SeedLike = 0
) -> float:
    """Shortcut: the violation rate at the paper's parameters."""
    return max_bucket_statistics(N, p, trials=trials, rng=rng).violation_rate


def _make_input(N: int, distribution: str, rng: np.random.Generator) -> np.ndarray:
    if distribution == "uniform":
        return rng.random(N)
    if distribution == "normal":
        return rng.normal(size=N)
    if distribution == "sorted":
        return np.sort(rng.random(N))
    if distribution == "zipf-ish":
        # heavy duplicates: many repeated small integers
        return rng.zipf(2.0, size=N).astype(float)
    raise ValueError(f"unknown input distribution {distribution!r}")
