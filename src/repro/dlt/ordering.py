"""Activation-order optimisation for one-port single-round DLT.

In the one-port model the master must choose in which order to feed the
workers.  For linear loads the classical result is that serving workers
by non-decreasing communication time :math:`c_i` is optimal (the
makespan is independent of the computation speeds' order once all
workers participate).  We provide the sort heuristic, an exhaustive
checker used in tests, and a helper that compares a given order's
makespan against the best.
"""

from __future__ import annotations

from itertools import permutations
from typing import Sequence

import numpy as np

from repro.dlt.single_round import Allocation, solve_linear_one_port
from repro.platform.star import StarPlatform


def bandwidth_order(platform: StarPlatform) -> np.ndarray:
    """Serve fastest links first: indices sorted by non-decreasing c_i."""
    return np.argsort(platform.comm_times, kind="stable")


def best_one_port_order(
    platform: StarPlatform, N: float, exhaustive_limit: int = 8
) -> Allocation:
    """Best one-port allocation over activation orders.

    Uses brute force for ``p <= exhaustive_limit`` workers (exact),
    otherwise the bandwidth-sort heuristic (optimal for linear loads).
    """
    if platform.size <= exhaustive_limit:
        return brute_force_one_port_order(platform, N)
    return solve_linear_one_port(platform, N, order=bandwidth_order(platform))


def brute_force_one_port_order(platform: StarPlatform, N: float) -> Allocation:
    """Exhaustively try all ``p!`` orders; exact but exponential.

    Only for small platforms (tests use it to certify the heuristic).
    """
    p = platform.size
    if p > 9:
        raise ValueError(
            f"brute force over {p}! orders is infeasible; use the heuristic"
        )
    best: Allocation | None = None
    for order in permutations(range(p)):
        alloc = solve_linear_one_port(platform, N, order=order)
        if best is None or alloc.makespan < best.makespan - 1e-15:
            best = alloc
    assert best is not None
    return best


def order_gap(
    platform: StarPlatform, N: float, order: Sequence[int]
) -> float:
    """Relative makespan excess of ``order`` over the best order.

    Returns ``(T(order) - T*) / T*``; zero means ``order`` is optimal.
    """
    given = solve_linear_one_port(platform, N, order=order)
    best = best_one_port_order(platform, N)
    if best.makespan == 0:
        return 0.0
    return (given.makespan - best.makespan) / best.makespan
