"""SpanRecorder: buffering, JSONL streams, ambient + explicit spans."""

import io
import threading

import pytest

from repro.obs import (
    Span,
    SpanRecorder,
    TraceContext,
    activate,
    current,
    parse_span_line,
    serving,
    span,
    start_trace,
)


def make_span(**overrides):
    base = dict(
        trace_id="a" * 16,
        span_id="b" * 8,
        parent_id=None,
        name="stage",
        service="test",
        start_s=100.0,
        duration_s=0.5,
    )
    base.update(overrides)
    return Span(**base)


class TestSpanLine:
    def test_round_trip_plain(self):
        original = make_span()
        parsed = parse_span_line(original.to_json_line())
        assert parsed == original

    def test_round_trip_with_meta_and_parent(self):
        original = make_span(
            parent_id="c" * 8, meta={"worker": "http://x", "items": 3}
        )
        parsed = parse_span_line(original.to_json_line())
        assert parsed == original

    def test_empty_meta_omitted_from_line(self):
        assert '"meta"' not in make_span().to_json_line()

    def test_rejects_non_json(self):
        with pytest.raises(ValueError, match="not a span line"):
            parse_span_line("this is not json")

    def test_rejects_non_object(self):
        with pytest.raises(ValueError, match="not a span object"):
            parse_span_line("[1, 2]")

    def test_rejects_missing_fields(self):
        with pytest.raises(ValueError, match="missing field"):
            parse_span_line('{"trace_id": "x", "span_id": "y"}')

    def test_end_s(self):
        assert make_span(start_s=10.0, duration_s=2.5).end_s == 12.5


class TestRecorderBufferMode:
    def test_record_snapshot_drain(self):
        recorder = SpanRecorder()
        recorder.record(make_span())
        recorder.record(make_span(span_id="c" * 8))
        assert len(recorder.snapshot()) == 2
        assert len(recorder.snapshot()) == 2  # snapshot keeps
        drained = recorder.drain()
        assert len(drained) == 2
        assert recorder.snapshot() == []
        assert recorder.spans_recorded == 2

    def test_span_contextmanager_times_and_records(self):
        recorder = SpanRecorder(service="unit")
        with recorder.span("f" * 16, "work", items=4) as open_span:
            open_span.meta["outcome"] = "ok"
        (recorded,) = recorder.drain()
        assert recorded.name == "work"
        assert recorded.service == "unit"
        assert recorded.meta == {"items": 4, "outcome": "ok"}
        assert recorded.duration_s >= 0.0

    def test_span_records_on_exception(self):
        recorder = SpanRecorder()
        with pytest.raises(RuntimeError):
            with recorder.span("f" * 16, "doomed"):
                raise RuntimeError("boom")
        (recorded,) = recorder.drain()
        assert recorded.name == "doomed"

    def test_span_honours_explicit_ids(self):
        recorder = SpanRecorder()
        with recorder.span(
            "f" * 16, "hop", span_id="1" * 8, parent_id="2" * 8
        ):
            pass
        (recorded,) = recorder.drain()
        assert recorded.span_id == "1" * 8
        assert recorded.parent_id == "2" * 8

    def test_threaded_recording_is_lossless(self):
        recorder = SpanRecorder()

        def hammer(k):
            for i in range(50):
                recorder.record(make_span(span_id=f"{k}{i:07d}"))

        threads = [
            threading.Thread(target=hammer, args=(k,)) for k in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert recorder.spans_recorded == 200
        assert len(recorder.drain()) == 200


class TestRecorderStreamMode:
    def test_writes_one_line_per_span(self):
        buf = io.StringIO()
        recorder = SpanRecorder(buf)
        recorder.record(make_span())
        recorder.record(make_span(span_id="c" * 8))
        lines = buf.getvalue().splitlines()
        assert len(lines) == 2
        assert parse_span_line(lines[0]).span_id == "b" * 8
        assert recorder.drain() == []  # stream mode does not buffer

    def test_open_appends_across_recorders(self, tmp_path):
        path = str(tmp_path / "spans.jsonl")
        first = SpanRecorder.open(path, service="server")
        first.record(make_span())
        first.close()
        second = SpanRecorder.open(path)
        second.record(make_span(span_id="c" * 8))
        second.close()
        lines = (tmp_path / "spans.jsonl").read_text().splitlines()
        assert len(lines) == 2

    def test_closed_stream_never_raises(self):
        buf = io.StringIO()
        recorder = SpanRecorder(buf)
        buf.close()
        recorder.record(make_span())  # must not raise
        assert recorder.spans_recorded == 0

    def test_close_leaves_borrowed_streams_open(self):
        buf = io.StringIO()
        SpanRecorder(buf).close()
        assert not buf.closed


class TestAmbient:
    def test_no_active_trace_is_a_noop(self):
        assert current() is None
        with span("anything") as open_span:
            assert open_span is None

    def test_activate_and_nest(self):
        recorder = SpanRecorder(service="unit")
        ctx = start_trace()
        with activate(recorder, ctx) as active:
            assert current() is active
            assert active.current_span_id == ctx.span_id
            with span("outer") as outer:
                assert active.current_span_id == outer.span_id
                with span("inner") as inner:
                    assert inner.parent_id == outer.span_id
            assert active.current_span_id == ctx.span_id
        assert current() is None
        names = {s.name: s for s in recorder.drain()}
        assert names["outer"].parent_id == ctx.span_id
        assert names["outer"].trace_id == ctx.trace_id
        assert names["inner"].service == "unit"

    def test_unsampled_context_installs_nothing(self):
        recorder = SpanRecorder()
        with activate(recorder, start_trace(sampled=False)) as active:
            assert active is None
            with span("ignored") as open_span:
                assert open_span is None
        assert recorder.drain() == []

    def test_ambient_state_is_per_thread(self):
        recorder = SpanRecorder()
        seen = []

        def other_thread():
            seen.append(current())

        with activate(recorder, start_trace()):
            worker = threading.Thread(target=other_thread)
            worker.start()
            worker.join()
        assert seen == [None]


class TestServing:
    def test_records_root_and_children(self):
        recorder = SpanRecorder(service="server")
        incoming = start_trace()
        with serving(recorder, incoming, "server /plan") as root:
            assert root.parent_id == incoming.span_id
            with span("wire_decode"):
                pass
        spans = {s.name: s for s in recorder.drain()}
        assert spans["server /plan"].trace_id == incoming.trace_id
        assert spans["wire_decode"].parent_id == spans["server /plan"].span_id

    @pytest.mark.parametrize(
        "recorder,context",
        [
            (None, TraceContext("a" * 16, "b" * 8)),
            (SpanRecorder(), None),
            (SpanRecorder(), TraceContext("a" * 16, "b" * 8, sampled=False)),
        ],
    )
    def test_noop_without_recorder_context_or_sampling(
        self, recorder, context
    ):
        with serving(recorder, context, "server /plan") as root:
            assert root is None
            with span("seam") as seam:
                assert seam is None
        if recorder is not None:
            assert recorder.drain() == []
