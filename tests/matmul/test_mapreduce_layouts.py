"""Tests for repro.matmul.mapreduce_layouts — the §1.1/§4 volume story."""

import numpy as np
import pytest

from repro.matmul.mapreduce_layouts import (
    best_hama_grid,
    hama_block_volume,
    matmul_lower_bound,
    naive_mapreduce_volume,
    partitioned_volume,
)


class TestClosedForms:
    def test_naive_cubic(self):
        assert naive_mapreduce_volume(10) == 2000.0

    def test_hama_value(self):
        assert hama_block_volume(10, 2) == 400.0

    def test_best_grid(self):
        assert best_hama_grid(16) == 4
        assert best_hama_grid(17) == 4
        assert best_hama_grid(1) == 1

    def test_lower_bound_homogeneous(self):
        """2N²√p when speeds are equal."""
        assert matmul_lower_bound(10, np.ones(16)) == pytest.approx(800.0)


class TestOrdering:
    def test_naive_dwarfs_blocked_for_large_n(self):
        N, q = 100, 4
        assert naive_mapreduce_volume(N) > 10 * hama_block_volume(N, q)

    def test_hama_optimal_on_homogeneous(self):
        """With q = √p equal reducers, HAMA volume = the lower bound."""
        p = 16
        q = best_hama_grid(p)
        N = 64
        assert hama_block_volume(N, q) == pytest.approx(
            matmul_lower_bound(N, np.ones(p))
        )

    def test_partitioned_beats_hama_on_heterogeneous(self):
        """The paper's claim, in matmul form: heterogeneity-aware
        partitioning ships less than the homogeneous grid whose block
        count is driven by the *slowest* worker."""
        rng = np.random.default_rng(0)
        speeds = rng.uniform(1, 100, 36)
        N = 60
        part_vol = partitioned_volume(N, speeds)
        lb = matmul_lower_bound(N, speeds)
        assert part_vol <= 1.05 * lb
        # the homogeneous-grid equivalent: one block per slowest share,
        # i.e. the §4.1.1 Comm_hom scaled by N steps
        from repro.core.bounds import comm_hom_ideal

        hom_vol = N * comm_hom_ideal(N, speeds)
        assert part_vol < hom_vol

    def test_partitioned_volume_sandwich(self):
        speeds = np.array([1.0, 2.0, 4.0])
        N = 30
        lb = matmul_lower_bound(N, speeds)
        vol = partitioned_volume(N, speeds)
        assert lb - 1e-9 <= vol <= 1.75 * lb + 1e-9
