"""ServerMetrics / AdmissionGate units + the /metrics endpoint + 429s."""

import time
import urllib.error
import urllib.request

import pytest

from repro.core.pipeline import PlanRequest
from repro.platform.star import StarPlatform
from repro.service.client import PlanServiceError, ServiceClient
from repro.service.metrics import (
    LATENCY_BUCKETS_S,
    AdmissionGate,
    ServerMetrics,
    merge_metrics,
    prometheus_exposition,
)
from repro.service.server import PlanServer


class TestServerMetrics:
    def test_counts_and_errors(self):
        metrics = ServerMetrics()
        metrics.observe("/plan", 200, 0.002)
        metrics.observe("/plan", 200, 0.004)
        metrics.observe("/plan", 500, 0.001)
        endpoint = metrics.payload()["endpoints"]["/plan"]
        assert endpoint["count"] == 3
        assert endpoint["errors"] == 1

    def test_status_below_400_is_not_an_error(self):
        metrics = ServerMetrics()
        metrics.observe("/plan", 200, 0.001)
        metrics.observe("/plan", 399, 0.001)
        assert metrics.payload()["endpoints"]["/plan"]["errors"] == 0

    def test_histogram_buckets(self):
        metrics = ServerMetrics()
        metrics.observe("/x", 200, 0.0005)  # first bucket (<= 1ms)
        metrics.observe("/x", 200, 99.0)  # overflow bucket
        buckets = metrics.payload()["endpoints"]["/x"]["buckets"]
        assert len(buckets) == len(LATENCY_BUCKETS_S) + 1
        assert buckets[0] == 1
        assert buckets[-1] == 1

    def test_percentiles_clamped_to_observed_max(self):
        metrics = ServerMetrics()
        for _ in range(100):
            metrics.observe("/x", 200, 0.0004)
        endpoint = metrics.payload()["endpoints"]["/x"]
        # every observation sits in the 1ms bucket, but the true max is
        # 0.4ms — percentiles must not report the invented bucket edge
        assert endpoint["p50_ms"] == pytest.approx(0.4)
        assert endpoint["p99_ms"] == pytest.approx(0.4)
        assert endpoint["mean_ms"] == pytest.approx(0.4)

    def test_overflow_percentile_uses_max(self):
        metrics = ServerMetrics()
        metrics.observe("/x", 200, 42.0)
        assert metrics.payload()["endpoints"]["/x"]["p99_ms"] == pytest.approx(
            42_000.0
        )

    def test_empty_payload(self):
        payload = ServerMetrics().payload()
        assert payload["endpoints"] == {}
        assert payload["latency_buckets_s"] == list(LATENCY_BUCKETS_S)
        assert payload["uptime_s"] >= 0

    def test_uptime_immune_to_wall_clock_steps(self, monkeypatch):
        """Regression: uptime used time.time(), so an NTP step (or any
        wall-clock jump) made uptime_s leap or go negative."""
        import repro.service.metrics as metrics_module

        metrics = ServerMetrics()
        # a wall-clock step back to the epoch must not touch uptime
        monkeypatch.setattr(metrics_module.time, "time", lambda: 0.0)
        uptime = metrics.payload()["uptime_s"]
        assert 0 <= uptime < 60

    def test_uptime_grows_with_monotonic_clock(self, monkeypatch):
        import repro.service.metrics as metrics_module

        real_monotonic = time.monotonic
        metrics = ServerMetrics()
        monkeypatch.setattr(
            metrics_module.time, "monotonic", lambda: real_monotonic() + 12.0
        )
        assert metrics.payload()["uptime_s"] >= 12.0

    def test_thread_safety_smoke(self):
        import threading

        metrics = ServerMetrics()

        def hammer():
            for _ in range(500):
                metrics.observe("/x", 200, 0.001)

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert metrics.payload()["endpoints"]["/x"]["count"] == 2000


class TestMergeMetrics:
    def _one(self, count, errors=0, seconds=0.002, max_s=None):
        metrics = ServerMetrics()
        for _ in range(count - errors):
            metrics.observe("/plan", 200, seconds)
        for _ in range(errors):
            metrics.observe("/plan", 500, max_s or seconds)
        return metrics.payload()

    def test_sums_counts_and_buckets(self):
        merged = merge_metrics([self._one(5), self._one(7, errors=2)])
        endpoint = merged["endpoints"]["/plan"]
        assert endpoint["count"] == 12
        assert endpoint["errors"] == 2
        assert sum(endpoint["buckets"]) == 12

    def test_max_is_max_of_maxima(self):
        merged = merge_metrics(
            [self._one(2, seconds=0.001), self._one(1, seconds=0.3)]
        )
        assert merged["endpoints"]["/plan"]["max_s"] == pytest.approx(0.3)

    def test_merge_of_none_is_empty(self):
        assert merge_metrics([])["endpoints"] == {}

    def test_disjoint_endpoints_both_survive(self):
        a = ServerMetrics()
        a.observe("/plan", 200, 0.001)
        b = ServerMetrics()
        b.observe("/cache/get", 200, 0.001)
        merged = merge_metrics([a.payload(), b.payload()])
        assert set(merged["endpoints"]) == {"/plan", "/cache/get"}

    def test_foreign_bucket_grid_rejected(self):
        payload = ServerMetrics().payload()
        payload["latency_buckets_s"] = [1.0, 2.0]
        with pytest.raises(ValueError, match="bucket grid"):
            merge_metrics([payload])


class TestPrometheusExposition:
    def payload(self):
        metrics = ServerMetrics()
        metrics.observe("/plan", 200, 0.001)
        metrics.observe("/plan", 500, 2.0)
        metrics.observe("/cache/get", 200, 0.0001)
        return metrics.payload()

    def test_counters_per_endpoint(self):
        text = prometheus_exposition(self.payload())
        assert 'repro_requests_total{endpoint="/plan"} 2' in text
        assert 'repro_request_errors_total{endpoint="/plan"} 1' in text
        assert 'repro_requests_total{endpoint="/cache/get"} 1' in text
        assert "# TYPE repro_requests_total counter" in text
        assert "# TYPE repro_uptime_seconds gauge" in text
        assert text.endswith("\n")

    def test_histogram_buckets_are_cumulative(self):
        text = prometheus_exposition(self.payload())
        counts = [
            int(line.rsplit(" ", 1)[1])
            for line in text.splitlines()
            if line.startswith(
                'repro_request_duration_seconds_bucket{endpoint="/plan"'
            )
        ]
        # one series per internal bound plus the +Inf overflow
        assert len(counts) == len(LATENCY_BUCKETS_S) + 1
        assert counts == sorted(counts)
        assert counts[-1] == 2  # +Inf covers everything observed
        assert (
            'repro_request_duration_seconds_bucket'
            '{endpoint="/plan",le="+Inf"} 2' in text
        )
        assert (
            'repro_request_duration_seconds_count{endpoint="/plan"} 2'
            in text
        )

    def test_sum_matches_observed_total(self):
        text = prometheus_exposition(self.payload())
        (sum_line,) = [
            line
            for line in text.splitlines()
            if line.startswith(
                'repro_request_duration_seconds_sum{endpoint="/plan"}'
            )
        ]
        assert float(sum_line.rsplit(" ", 1)[1]) == pytest.approx(
            2.001, rel=1e-6
        )

    def test_merged_payload_renders_too(self):
        a, b = ServerMetrics(), ServerMetrics()
        a.observe("/plan", 200, 0.01)
        b.observe("/plan", 200, 0.02)
        text = prometheus_exposition(
            merge_metrics([a.payload(), b.payload()])
        )
        assert 'repro_requests_total{endpoint="/plan"} 2' in text

    def test_empty_payload_renders_headers_only(self):
        text = prometheus_exposition(ServerMetrics().payload())
        assert "repro_uptime_seconds" in text
        assert "repro_requests_total{" not in text


class TestAdmissionGate:
    def test_unlimited_by_default(self):
        gate = AdmissionGate(None)
        assert all(gate.try_acquire() for _ in range(1000))

    def test_limit_enforced_and_released(self):
        gate = AdmissionGate(2)
        assert gate.try_acquire()
        assert gate.try_acquire()
        assert not gate.try_acquire()
        gate.release()
        assert gate.try_acquire()
        assert gate.inflight == 2

    def test_limit_zero_always_refuses(self):
        assert not AdmissionGate(0).try_acquire()

    def test_release_never_negative(self):
        gate = AdmissionGate(1)
        gate.release()
        assert gate.inflight == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            AdmissionGate(-1)
        with pytest.raises(ValueError):
            AdmissionGate(1, retry_after=0)


class TestMetricsEndpoint:
    @pytest.fixture()
    def server(self):
        with PlanServer(port=0, cache="memory") as srv:
            yield srv

    @pytest.fixture()
    def platform(self):
        return StarPlatform.from_speeds([1.0, 2.0, 4.0])

    def test_per_endpoint_counts(self, server, platform):
        client = ServiceClient(server.url)
        request = PlanRequest(platform=platform, N=100.0, strategy="het")
        client.plan(request)
        client.plan(request)
        client.cache_stats()
        payload = client.get_json("/metrics")
        endpoints = payload["endpoints"]
        assert endpoints["/plan"]["count"] == 2
        assert endpoints["/plan"]["errors"] == 0
        assert endpoints["/cache/stats"]["count"] == 1
        assert endpoints["/plan"]["p50_ms"] > 0

    def test_unknown_paths_aggregate_as_other(self, server):
        for path in ("/nope", "/also/nope"):
            with pytest.raises(urllib.error.HTTPError):
                urllib.request.urlopen(f"{server.url}{path}", timeout=5)
        payload = ServiceClient(server.url).get_json("/metrics")
        assert payload["endpoints"]["other"]["count"] == 2
        assert payload["endpoints"]["other"]["errors"] == 2
        assert "/nope" not in payload["endpoints"]

    def test_health_advertises_max_inflight(self, server):
        assert ServiceClient(server.url).healthz()["max_inflight"] is None


class TestServerAdmission:
    @pytest.fixture()
    def platform(self):
        return StarPlatform.from_speeds([1.0, 2.0])

    def test_full_server_answers_429_with_retry_after(self, platform):
        with PlanServer(port=0, max_inflight=0, retry_after=0.3) as server:
            from repro.service import wire

            request = PlanRequest(platform=platform, N=10.0, strategy="het")
            raw = urllib.request.Request(
                f"{server.url}/plan",
                data=wire.pack_as(request, wire.PROFILE_BINARY),
                headers={wire.PROFILE_HEADER: wire.PROFILE_BINARY},
            )
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(raw, timeout=5)
            assert err.value.code == 429
            assert err.value.headers.get("Retry-After") == "0.3"

    def test_429s_show_up_in_metrics(self, platform):
        with PlanServer(port=0, max_inflight=0) as server:
            client = ServiceClient(server.url, retries=0)
            request = PlanRequest(platform=platform, N=10.0, strategy="het")
            with pytest.raises(PlanServiceError):
                client.plan(request)
            endpoint = client.get_json("/metrics")["endpoints"]["/plan"]
            assert endpoint["count"] == 1
            assert endpoint["errors"] == 1

    def test_cache_endpoints_not_admission_gated(self, platform):
        # admission protects *planning*; the cheap cache/control calls
        # must keep answering so clients can probe a busy server
        with PlanServer(port=0, max_inflight=0, cache="memory") as server:
            client = ServiceClient(server.url, retries=0)
            assert client.cache_get(("any", "key")) is None
            assert client.cache_stats()["cache"] == "on"
