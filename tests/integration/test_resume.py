"""Kill/resume acceptance: an interrupted Figure-4 sweep picks up
where it died and reproduces the uninterrupted run exactly.

The protocol draws each trial's platform from a seed-derived RNG, so
the sweep's planning queries are deterministic in (seed, protocol).
Every planned point is written through to the sqlite store *before*
the sweep advances, so a crash loses at most the in-flight point:
rerunning against the same cache file replays finished points as disk
hits and only plans the tail.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.core.cache import SQLitePlanCache, TieredPlanCache
from repro.experiments.figure4 import run_figure4
from repro.experiments.rho import run_rho_experiment

PROTOCOL = dict(processors=(4, 6), trials=8, seed=2026, N=800.0)


class SimulatedCrash(RuntimeError):
    """Stands in for a SIGKILL mid-sweep."""


class CrashingStore:
    """A store that dies after ``survive_puts`` writes — mid-sweep.

    Wraps a real :class:`SQLitePlanCache`, so everything written before
    the "crash" is durably on disk, exactly like a killed process.
    """

    def __init__(self, inner: SQLitePlanCache, survive_puts: int) -> None:
        self.inner = inner
        self.remaining = survive_puts

    def get(self, key):
        return self.inner.get(key)

    def put(self, key, result):
        if self.remaining <= 0:
            raise SimulatedCrash("sweep killed mid-trial")
        self.remaining -= 1
        self.inner.put(key, result)

    def clear(self):
        self.inner.clear()

    def __len__(self):
        return len(self.inner)

    @property
    def stats(self):
        return self.inner.stats


def panels_equal(a, b) -> bool:
    return (
        a.processors == b.processors
        and set(a.means) == set(b.means)
        and all(np.array_equal(a.means[n], b.means[n]) for n in a.means)
        and all(np.array_equal(a.stds[n], b.stds[n]) for n in a.stds)
    )


def test_killed_figure4_sweep_resumes_exactly(tmp_path, capsys):
    # the ground truth: one uninterrupted run, plain in-memory cache
    reference = run_figure4("uniform", **PROTOCOL)

    # run against a durable store that crashes after 10 planned points
    path = tmp_path / "sweep.db"
    crashing = CrashingStore(SQLitePlanCache(path), survive_puts=10)
    with pytest.raises(SimulatedCrash):
        run_figure4("uniform", cache=crashing, **PROTOCOL)
    crashing.inner.close()

    survivors = SQLitePlanCache(path)
    assert 0 < len(survivors) <= 10  # partial progress is on disk
    lookups_before = survivors.stats.lookups
    survivors.close()

    # resume: same protocol, same file — finished points replay from
    # disk, and the final panel matches the uninterrupted run exactly
    resumed = run_figure4("uniform", cache=f"sqlite:{path}", **PROTOCOL)
    assert panels_equal(reference, resumed)

    store = SQLitePlanCache(path)
    stats = store.stats
    store.close()
    assert stats.hits > 0, "no disk hits: the resume replanned everything"
    assert stats.lookups > lookups_before

    # the acceptance readout: `repro cache stats PATH` reports the hits
    assert cli_main(["cache", "stats", str(path)]) == 0
    out = capsys.readouterr().out
    assert "Plan cache statistics" in out
    assert f"{stats.hits}" in out


def test_resumed_sweep_only_plans_the_tail(tmp_path):
    """Second full run against a warm store is 100% disk hits."""
    path = tmp_path / "warm.db"
    first = run_figure4("uniform", cache=f"sqlite:{path}", **PROTOCOL)
    store = SQLitePlanCache(path)
    entries = len(store)
    misses_after_first = store.stats.misses
    store.close()

    second = run_figure4("uniform", cache=f"sqlite:{path}", **PROTOCOL)
    assert panels_equal(first, second)

    store = SQLitePlanCache(path)
    stats = store.stats
    store.close()
    # the warm pass planned nothing new: same rows, no new misses
    assert stats.misses == misses_after_first
    assert len(SQLitePlanCache(path)) == entries
    assert stats.hits >= entries


def test_tiered_resume_reports_disk_tier_hits(tmp_path):
    """Resuming through a tiered store lands the replay on the disk tier."""
    path = tmp_path / "tiered.db"
    run_figure4("uniform", cache=f"sqlite:{path}", **PROTOCOL)

    tiered = TieredPlanCache(path)
    resumed = run_figure4("uniform", cache=tiered, **PROTOCOL)
    tiers = dict(tiered.stats.tier_hits)
    tiered.close()
    assert tiers["disk"] > 0
    assert resumed.trials == PROTOCOL["trials"]


def test_rho_table_resumes_from_disk(tmp_path):
    """The rho experiment's cache spec makes its table resumable too."""
    path = tmp_path / "rho.db"
    ks = (1, 4, 16)
    first = run_rho_experiment(ks=ks, p=6, cache=f"sqlite:{path}")
    second = run_rho_experiment(ks=ks, p=6, cache=f"sqlite:{path}")
    assert [r.measured_rho for r in first.rows] == [
        r.measured_rho for r in second.rows
    ]
    store = SQLitePlanCache(path)
    assert store.stats.hits > 0
    store.close()
