"""Benchmarks for the plan storage layer (memory / sqlite / tiered).

Two questions the storage tentpole must answer with numbers:

* **store overhead** — how much slower is a durable ``get``/``put``
  than the in-memory LRU?  (It only has to be cheap relative to
  *planning*, which it replaces on a hit.)
* **warm resume** — how much of a Figure-4 panel's wall-clock does a
  pre-warmed sqlite cache recover?  This is the killed-sweep resume
  path: the second run replays every point from disk.

Both emit ``BENCH {...}`` JSON lines for CI trend tracking, like the
vectorised-batch benchmark in ``bench_figure4.py``.
"""

import json
import time

import numpy as np
import pytest

from repro.core.cache import (
    MemoryPlanCache,
    SQLitePlanCache,
    TieredPlanCache,
    plan_cache_key,
)
from repro.core.pipeline import PlanRequest, plan_request
from repro.core.session import PlannerSession
from repro.experiments.figure4 import run_figure4
from repro.platform.star import StarPlatform
from repro import registry


def _sample_entries(count=64, seed=7):
    """(key, PlanResult) pairs from real planned requests."""
    rng = np.random.default_rng(seed)
    factory = registry.get("strategy", "het")
    entries = []
    for _ in range(count):
        platform = StarPlatform.from_speeds(
            rng.uniform(1.0, 10.0, size=8).tolist()
        )
        request = PlanRequest(platform=platform, N=1000.0, strategy="het")
        entries.append((plan_cache_key(request, factory), plan_request(request)))
    return entries


@pytest.mark.parametrize("kind", ["memory", "sqlite", "tiered"])
def test_store_roundtrip_throughput(kind, tmp_path):
    """put + 3x get over every entry; reports ops/s per store kind."""
    entries = _sample_entries()
    if kind == "memory":
        store = MemoryPlanCache()
    elif kind == "sqlite":
        store = SQLitePlanCache(tmp_path / "bench.db")
    else:
        store = TieredPlanCache(tmp_path / "bench.db")

    start = time.perf_counter()
    for key, result in entries:
        store.put(key, result)
    reads = 0
    for _ in range(3):
        for key, _ in entries:
            assert store.get(key) is not None
            reads += 1
    elapsed = time.perf_counter() - start

    ops = len(entries) + reads
    print()
    print(
        "BENCH "
        + json.dumps(
            {
                "name": "plan_store_roundtrip",
                "store": kind,
                "ops": ops,
                "elapsed_s": round(elapsed, 4),
                "ops_per_s": round(ops / elapsed, 1),
            }
        )
    )
    stats = store.stats
    assert stats.hits == reads and stats.misses == 0


def test_figure4_warm_sqlite_resume(tmp_path):
    """A pre-warmed sqlite cache must replay a panel markedly faster.

    Cold run fills the store; the warm run (a fresh session and store
    instance on the same file, as after a crash) must serve every
    lookup from disk and finish in well under half the cold time.
    """
    path = tmp_path / "resume.db"
    protocol = dict(
        processors=(10, 20), trials=10, seed=2013, N=1000.0
    )

    start = time.perf_counter()
    cold = run_figure4("uniform", cache=f"sqlite:{path}", **protocol)
    cold_s = time.perf_counter() - start

    start = time.perf_counter()
    warm = run_figure4("uniform", cache=f"sqlite:{path}", **protocol)
    warm_s = time.perf_counter() - start

    for name in cold.means:
        assert np.array_equal(cold.means[name], warm.means[name]), name

    store = SQLitePlanCache(path)
    hits = store.stats.hits
    store.close()
    assert hits > 0

    print()
    print(
        "BENCH "
        + json.dumps(
            {
                "name": "figure4_warm_sqlite_resume",
                "cold_s": round(cold_s, 4),
                "warm_s": round(warm_s, 4),
                "speedup": round(cold_s / warm_s, 2),
                "disk_hits": hits,
            }
        )
    )
    assert warm_s < cold_s * 0.5, (
        f"warm resume only {cold_s / warm_s:.1f}x faster"
    )
