"""Divisible-load scheduling on multi-level trees.

Model: store-and-forward relaying with parallel links (the paper's §1.2
communication model applied level-wise).  A node receives its subtree's
entire data over its parent link, keeps its own chunk, and forwards the
rest to its children — all child transfers in parallel — who recurse.
As in §1.2, a node computes only once its whole chunk has arrived.

Solver: the optimal single-round schedule has every node finishing at
the common makespan ``T`` (the standard DLT exchange argument — any
slack on one node can absorb load from a later-finishing one).  That
pins the system

.. math::
   \\text{arrive}_v &= \\text{arrive}_{parent(v)} + c_v m_v \\\\
   w_v\\, n_v^{\\alpha} &= T - \\text{arrive}_v \\\\
   m_v &= n_v + \\sum_{ch} m_{ch}

where ``m_v`` is the data entering subtree ``v`` and ``n_v`` the chunk
node ``v`` computes itself.  Given ``T`` we solve it by damped fixed-
point iteration (``m`` up, ``arrive`` down); ``m_root(T)`` is strictly
increasing, so the outer bisection on ``T`` hits ``m_root = N``.

For **linear** costs the same equal-finish structure collapses to an
exact closed form by subtree aggregation — the classic "equivalent
processor" trick:

.. math:: \\rho_{leaf} = \\frac{1}{c + w}, \\qquad
          \\rho_v = \\frac{1/w_v + \\sum_{ch} \\rho_{ch}}
                        {1 + c_v\\,(1/w_v + \\sum_{ch} \\rho_{ch})},
          \\qquad T = N / \\rho_{root}

(with ``c_root = 0``).  The fixed-point solver is validated against
this closed form in the tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.platform.tree import TreeNode, TreePlatform
from repro.registry import register
from repro.util.validation import check_positive

_T_ITERS = 80
_FP_ITERS = 300
_TOL = 1e-11


@dataclass(frozen=True)
class TreeAllocation:
    """Per-node chunks and timing of a tree schedule."""

    amounts: Dict[str, float]
    receive_end: Dict[str, float]
    makespan: float
    alpha: float

    @property
    def total(self) -> float:
        return float(sum(self.amounts.values()))

    def amount_of(self, node: TreeNode) -> float:
        return self.amounts[node.name]

    def covered_work_fraction(self, N: float) -> float:
        """For cost n^alpha: Σ n_v^alpha / N^alpha (§2's metric)."""
        covered = sum(n**self.alpha for n in self.amounts.values())
        return covered / N**self.alpha


def equivalent_rate(node: TreeNode) -> float:
    """Exact equivalent processing rate of a subtree for *linear* loads.

    ``rho`` such that the subtree, fed from its parent link starting at
    time ``t``, completes ``rho * (T - t)`` data units by ``T``.
    """
    inner = node.speed + sum(equivalent_rate(ch) for ch in node.children)
    if node.is_root:
        return inner
    return inner / (1.0 + node.comm_time * inner)


def _postorder(root: TreeNode) -> List[TreeNode]:
    out: List[TreeNode] = []

    def rec(n: TreeNode) -> None:
        for ch in n.children:
            rec(ch)
        out.append(n)

    rec(root)
    return out


def _chunk(node: TreeNode, budget: float, alpha: float) -> float:
    """Largest chunk the node itself computes within ``budget`` time."""
    if budget <= 0:
        return 0.0
    if alpha == 1.0:
        return budget * node.speed
    return float((budget * node.speed) ** (1.0 / alpha))


def _solve_node(
    node: TreeNode, t: float, T: float, alpha: float, child_sum: float
) -> float:
    """Solve ``m = chunk(T - t - c m) + child_sum`` for this node.

    The left side grows, the right side shrinks in ``m`` — a unique
    root, found by bisection on ``[0, (T - t)/c]`` (any larger ``m``
    could not even finish arriving).  ``child_sum`` is held fixed; the
    outer sweep re-solves children against the new arrival time.
    """
    if t >= T:
        return 0.0
    c = 0.0 if node.is_root else node.comm_time
    if c == 0.0:
        return _chunk(node, T - t, alpha) + child_sum
    hi = (T - t) / c
    if hi <= child_sum:
        # even a transfer ending exactly at T cannot carry the
        # children's demand; clip — children shrink on the next sweep
        return hi

    def h(m: float) -> float:
        return m - _chunk(node, T - t - c * m, alpha) - child_sum

    lo = 0.0
    for _ in range(60):
        mid = 0.5 * (lo + hi)
        if h(mid) < 0:
            lo = mid
        else:
            hi = mid
        if hi - lo <= _TOL * max(1.0, hi):
            break
    return 0.5 * (lo + hi)


def _solve_given_T(
    platform: TreePlatform, T: float, alpha: float
) -> tuple[Dict[str, float], Dict[str, float], float]:
    """Fixed point of the equal-finish system at deadline ``T``.

    Gauss–Seidel-style sweeps in pre-order: each node solves its scalar
    equation exactly against the parent's *updated* arrival time and the
    children's previous-sweep subtree totals.  Feedback crosses one tree
    level per sweep, so convergence takes O(height) sweeps; the loop
    stops on a fixed-point residual.

    Returns ``(n, arrive, m_root)`` — per-node chunks, arrival times and
    the total data the tree absorbs by ``T``.
    """
    nodes = list(platform.root.iter_subtree())  # pre-order
    m: Dict[str, float] = {n.name: 0.0 for n in nodes}
    arrive: Dict[str, float] = {n.name: 0.0 for n in nodes}

    for _ in range(_FP_ITERS):
        delta = 0.0
        for node in nodes:
            t = 0.0 if node.is_root else arrive[node.parent.name]
            child_sum = sum(m[ch.name] for ch in node.children)
            new_m = _solve_node(node, t, T, alpha, child_sum)
            c = 0.0 if node.is_root else node.comm_time
            arrive[node.name] = t + c * new_m
            delta = max(delta, abs(new_m - m[node.name]))
            m[node.name] = new_m
        if delta <= _TOL * max(1.0, T):
            break

    n_chunk: Dict[str, float] = {}
    for node in nodes:
        child_sum = sum(m[ch.name] for ch in node.children)
        n_chunk[node.name] = max(0.0, m[node.name] - child_sum)
    return n_chunk, arrive, m[platform.root.name]


@register(
    "dlt_solver",
    "tree",
    summary="Single-round allocation on a tree platform (equivalent rates)",
)
def solve_tree(
    platform: TreePlatform, N: float, alpha: float = 1.0
) -> TreeAllocation:
    """Equal-finish-time store-and-forward schedule of ``N`` data units.

    ``alpha`` is the compute-cost exponent (1 = classical linear DLT,
    where the result matches the :func:`equivalent_rate` closed form).
    Chunks are rescaled to sum exactly to ``N``.
    """
    check_positive(N, "N")
    check_positive(alpha, "alpha")

    def absorbed(T: float) -> float:
        return _solve_given_T(platform, T, alpha)[2]

    if alpha == 1.0:
        # exact closed form gives the bracket center immediately
        T_guess = N / equivalent_rate(platform.root)
        T_lo, T_hi = 0.5 * T_guess, 2.0 * T_guess
    else:
        T_lo, T_hi = 0.0, 1.0
    while absorbed(T_hi) < N:
        T_hi *= 2.0
        if T_hi > 1e18:
            raise RuntimeError("makespan bracket exploded — degenerate tree?")
    while T_lo > 0 and absorbed(T_lo) > N:
        T_lo *= 0.5
    for _ in range(_T_ITERS):
        T_mid = 0.5 * (T_lo + T_hi)
        if absorbed(T_mid) < N:
            T_lo = T_mid
        else:
            T_hi = T_mid
        if T_hi - T_lo <= _TOL * max(1.0, T_hi):
            break
    T = T_hi

    n_chunk, arrive, m_root = _solve_given_T(platform, T, alpha)
    total = sum(n_chunk.values())
    if total > 0:
        scale = N / total
        for k in n_chunk:
            n_chunk[k] *= scale
    return TreeAllocation(
        amounts=n_chunk,
        receive_end=dict(arrive),
        makespan=float(T),
        alpha=float(alpha),
    )
