"""Ablation: partitioner choice (column DP vs bisection vs baselines).

DESIGN.md calls out the partitioner as the load-bearing design choice of
``Comm_het``; this bench quantifies each alternative's ratio to the
lower bound on the Figure-4 speed distributions.  The whole trial ×
partitioner grid is expressed as one request batch and fanned out by a
threaded :class:`PlannerSession` — the ``het`` strategy's
``partitioner`` param selects the alternative, and with ``N = 1`` the
plan's ratio-to-LB *is* the unit-square half-perimeter ratio the
original loop computed.
"""

import numpy as np
import pytest

from repro import registry
from repro.core.pipeline import PlanRequest
from repro.core.session import PlannerSession
from repro.partition.lower_bound import peri_sum_lower_bound
from repro.platform.star import StarPlatform
from repro.util.tables import format_table

#: every registered area-vector partitioner, enumerated from the
#: registry (count-based ones like "grid" don't fit this protocol)
PARTITIONERS = tuple(
    comp.name
    for comp in registry.describe("partitioner")
    if comp.metadata.get("input") != "count"
)


def test_partitioner_ablation(benchmark):
    def run():
        rng = np.random.default_rng(0)
        p, trials = 30, 25
        platforms = [
            StarPlatform.from_speeds(rng.uniform(1, 100, p))
            for _ in range(trials)
        ]
        requests = [
            PlanRequest(
                platform=platform,
                N=1.0,
                strategy="het",
                params={"partitioner": name},
            )
            for platform in platforms
            for name in PARTITIONERS
        ]
        with PlannerSession(backend="threaded") as session:
            results = session.plan_batch(requests)
        ratios = {name: [] for name in PARTITIONERS}
        for res in results:
            ratios[res.request.params["partitioner"]].append(
                res.ratio_to_lower_bound
            )
        return {name: (np.mean(v), np.max(v)) for name, v in ratios.items()}

    stats = benchmark.pedantic(run, iterations=1, rounds=1)
    print()
    print(
        format_table(
            ["partitioner", "mean ratio to LB", "worst ratio"],
            [[name, m, w] for name, (m, w) in stats.items()],
            title="Ablation: PERI-SUM objective across partitioners "
            "(p=30, uniform speeds):",
        )
    )
    # the paper's algorithm: near-optimal and guaranteed
    assert stats["peri-sum"][1] <= 1.75
    assert stats["peri-sum"][0] < 1.05
    # bisection competitive; strip far off
    assert stats["recursive"][0] < 1.10
    assert stats["strip"][0] > 2.0


def test_column_dp_scaling(benchmark):
    """Runtime ablation: the O(p²) DP stays sub-second at p=500."""
    rng = np.random.default_rng(1)
    speeds = rng.uniform(1, 100, 500)
    areas = speeds / speeds.sum()
    from repro.partition.column_based import peri_sum_cost

    cost = benchmark(peri_sum_cost, areas)
    assert cost >= peri_sum_lower_bound(areas) - 1e-9
