"""Kill-a-worker chaos: SIGKILL one replica mid-``/plan_batch``.

The acceptance claim: a worker crashing *while its shard of a batch is
in flight* is invisible to the client — the coordinator reroutes the
dead replica's items to survivors and the completed sweep is
bit-identical (rtol=1e-12) to an undisturbed serial run.

Workers run ``--no-vectorize`` so each shard costs real wall-clock
(~1s of scalar het planning at p=512) and the SIGKILL provably lands
mid-batch, not in a gap; planning purity is what makes the replayed
items identical.
"""

import os
import signal
import threading
import time

import numpy as np
import pytest

from repro.cluster.lifecycle import LocalCluster
from repro.core.pipeline import PlanRequest
from repro.core.session import PlannerSession
from repro.obs import SpanRecorder, assemble_traces, read_spans, start_trace
from repro.platform.star import StarPlatform
from repro.service.client import ServiceClient

#: big enough that each of 3 workers holds ~1.1s of scalar planning
N_REQUESTS = 450
P = 512
KILL_AFTER_S = 0.5


@pytest.fixture(scope="module")
def heavy_requests():
    rng = np.random.default_rng(20130521)
    platform = StarPlatform.from_speeds(rng.uniform(1.0, 8.0, size=P))
    return [
        PlanRequest(platform=platform, N=50_000.0 + i, strategy="het")
        for i in range(N_REQUESTS)
    ]


@pytest.fixture(scope="module")
def serial_results(heavy_requests):
    with PlannerSession(cache=False, vectorize=False) as session:
        return session.plan_batch(heavy_requests)


def test_sigkill_mid_batch_yields_bit_identical_sweep(
    heavy_requests, serial_results, tmp_path
):
    state_path = str(tmp_path / "chaos-cluster.json")
    with LocalCluster(
        n=3,
        cache=None,
        vectorize=False,  # workers plan scalars: shards take real time
        heartbeat_interval=0.25,
        state_path=state_path,
    ) as cluster:
        address = f"{cluster.coordinator.host}:{cluster.coordinator.port}"
        killed_at = {}

        def assassin():
            time.sleep(KILL_AFTER_S)
            cluster.kill_worker(0, signal.SIGKILL)
            killed_at["t"] = time.perf_counter()

        killer = threading.Thread(target=assassin, daemon=True)
        with PlannerSession(
            backend=f"remote:{address}", cache=False
        ) as remote:
            started = time.perf_counter()
            killer.start()
            results = remote.plan_batch(heavy_requests)
            finished = time.perf_counter()
        killer.join()

        # the kill landed while the batch was still in flight
        assert killed_at["t"] < finished, "batch finished before the kill"
        assert finished - started > KILL_AFTER_S

        # complete and bit-identical to the serial run
        assert len(results) == len(serial_results)
        for actual, expected in zip(results, serial_results):
            assert actual.request == expected.request
            np.testing.assert_allclose(
                actual.plan.finish_times,
                expected.plan.finish_times,
                rtol=1e-12,
            )
            np.testing.assert_allclose(
                actual.plan.makespan, expected.plan.makespan, rtol=1e-12
            )

        # the pool noticed: the killed replica is dead, with a reason
        snapshot = cluster.coordinator.pool.snapshot()
        dead = [w for w in snapshot["workers"] if not w["alive"]]
        assert len(dead) == 1
        assert dead[0]["url"] == cluster.workers[0].url

        # the survivors carried rerouted load
        survivors = [w for w in snapshot["workers"] if w["alive"]]
        assert sum(w["dispatched"] for w in survivors) >= N_REQUESTS


def test_rerouted_units_keep_their_trace_identity(tmp_path):
    """A SIGKILL mid-batch shows up *inside* the request's own trace.

    The sampled ``/plan_batch``'s assembled tree must contain the
    failed dispatch hop (outcome ``unreachable``) *and* the reroute
    that replayed the dead worker's shard on a survivor (a later-round
    ``ok`` hop), all under the original trace id — a latency
    investigation of the slow request explains itself.
    """
    rng = np.random.default_rng(20130522)
    platform = StarPlatform.from_speeds(rng.uniform(1.0, 8.0, size=P))
    requests = [
        PlanRequest(platform=platform, N=30_000.0 + i, strategy="het")
        for i in range(180)
    ]
    trace_path = str(tmp_path / "chaos-spans.jsonl")
    client_rec = SpanRecorder(service="client")
    ctx = start_trace()
    with LocalCluster(
        n=2,
        cache=None,
        vectorize=False,  # scalar shards: the kill lands mid-flight
        heartbeat_interval=0.25,
        state_path=str(tmp_path / "chaos-trace-cluster.json"),
        trace=trace_path,
    ) as cluster:

        def assassin():
            time.sleep(0.3)
            cluster.kill_worker(0, signal.SIGKILL)

        killer = threading.Thread(target=assassin, daemon=True)
        killer.start()
        client = ServiceClient(
            cluster.url, span_recorder=client_rec, timeout=60.0
        )
        results = client.plan_items(requests, trace=ctx)
        killer.join()
        time.sleep(0.5)  # let coordinator + worker spans flush

        snapshot = cluster.coordinator.pool.snapshot()
        assert sum(1 for w in snapshot["workers"] if not w["alive"]) == 1

    assert len(results) == len(requests)
    span_files = [trace_path] + [
        f"{trace_path}.w{i}" for i in range(2)
        if os.path.exists(f"{trace_path}.w{i}")
    ]
    spans = client_rec.drain() + read_spans(span_files)
    # every span the whole cluster recorded belongs to the one sampled op
    assert {span.trace_id for span in spans} == {ctx.trace_id}

    (trace,) = assemble_traces(spans)
    dispatches = [s for s in trace.spans if s.name == "dispatch"]
    failed = [d for d in dispatches if d.meta["outcome"] == "unreachable"]
    assert failed, "the killed worker's hop left no span"
    reroutes = [
        d for d in dispatches
        if d.meta["round"] >= 1 and d.meta["outcome"] == "ok"
    ]
    assert reroutes, "no successful reroute hop recorded"
    # the replayed shard is at least as big as what the dead worker held
    assert sum(d.meta["items"] for d in reroutes) >= failed[0].meta["items"]
    # the surviving worker served both its own shard and the replay,
    # as server-side root spans chained under the coordinator's hops
    server_roots = [
        s for s in trace.spans
        if s.service == "server" and s.name == "server /plan_batch"
    ]
    assert len(server_roots) >= 2
    hop_ids = {d.span_id for d in dispatches}
    assert all(s.parent_id in hop_ids for s in server_roots)
    # the failed hop is part of the tree, not an orphan
    assert trace.complete


def test_cluster_without_chaos_matches_serial(
    heavy_requests, serial_results, tmp_path
):
    """Control: the same cluster undisturbed returns the same sweep."""
    with LocalCluster(
        n=3,
        cache=None,
        vectorize=False,
        heartbeat_interval=0.25,
        state_path=str(tmp_path / "calm-cluster.json"),
    ) as cluster:
        address = f"{cluster.coordinator.host}:{cluster.coordinator.port}"
        with PlannerSession(
            backend=f"remote:{address}", cache=False
        ) as remote:
            results = remote.plan_batch(heavy_requests)
    for actual, expected in zip(results, serial_results):
        np.testing.assert_allclose(
            actual.plan.finish_times, expected.plan.finish_times, rtol=1e-12
        )
